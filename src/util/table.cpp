#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace procap {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: need at least one column");
  }
}

void TablePrinter::add_row(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(row));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << " |\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) {
    emit(row);
  }
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

struct CsvWriter::Impl {
  std::ofstream file;
  std::size_t columns = 0;
};

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> headers)
    : impl_(new Impl) {
  impl_->file.open(path);
  if (!impl_->file) {
    delete impl_;
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  impl_->columns = headers.size();
  for (std::size_t c = 0; c < headers.size(); ++c) {
    impl_->file << (c == 0 ? "" : ",") << headers[c];
  }
  impl_->file << "\n";
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::row(const std::vector<double>& cells) {
  if (cells.size() != impl_->columns) {
    throw std::invalid_argument("CsvWriter::row: cell count mismatch");
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    impl_->file << (c == 0 ? "" : ",") << cells[c];
  }
  impl_->file << "\n";
}

}  // namespace procap
