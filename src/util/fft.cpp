#include "util/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace procap::util {

void fft(std::span<std::complex<double>> data) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  if (n < 2) {
    return;
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) {
      j ^= bit;
    }
    j |= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  // Iterative butterflies.  Twiddles come from std::polar on the exact
  // same angles every call, so the operation order (and the result) is
  // fixed for a given input.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen = std::polar(1.0, angle);
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w{1.0, 0.0};
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = data[i + j];
        const std::complex<double> v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace procap::util
