// units.hpp — physical unit aliases and conversion helpers.
//
// procap deals in power (watts), energy (joules), frequency (hertz) and
// time (seconds / nanoseconds).  We use plain `double` with descriptive
// aliases rather than heavyweight unit types: every quantity that crosses
// a module boundary is named with its unit, and the conversion helpers
// below keep magic constants out of call sites.
#pragma once

#include <cstdint>

namespace procap {

/// Power in watts.
using Watts = double;
/// Energy in joules.
using Joules = double;
/// Frequency in hertz.
using Hertz = double;
/// Time span in seconds (floating point, used for model math).
using Seconds = double;
/// Time in integer nanoseconds (used for simulation clocks; exact).
using Nanos = std::int64_t;

/// One second expressed in nanoseconds.
inline constexpr Nanos kNanosPerSecond = 1'000'000'000;

/// Convert integer nanoseconds to floating-point seconds.
constexpr Seconds to_seconds(Nanos ns) noexcept {
  return static_cast<Seconds>(ns) / static_cast<Seconds>(kNanosPerSecond);
}

/// Convert floating-point seconds to integer nanoseconds (truncating).
constexpr Nanos to_nanos(Seconds s) noexcept {
  return static_cast<Nanos>(s * static_cast<Seconds>(kNanosPerSecond));
}

/// Frequency helpers: the hardware model quotes frequencies in MHz
/// (as the paper does: 3300 MHz nominal max, 1600 MHz for beta probes).
constexpr Hertz mhz(double v) noexcept { return v * 1e6; }
constexpr Hertz ghz(double v) noexcept { return v * 1e9; }
constexpr double as_mhz(Hertz f) noexcept { return f / 1e6; }
constexpr double as_ghz(Hertz f) noexcept { return f / 1e9; }

/// Millisecond / microsecond literals for simulation step sizes.
constexpr Nanos msec(double v) noexcept { return static_cast<Nanos>(v * 1e6); }
constexpr Nanos usec(double v) noexcept { return static_cast<Nanos>(v * 1e3); }

}  // namespace procap
