#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace procap {

StreamingStats::StreamingStats()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void StreamingStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ += delta * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

double StreamingStats::cv() const noexcept {
  const double m = mean();
  return m != 0.0 ? stddev() / std::abs(m) : 0.0;
}

void StreamingStats::reset() { *this = StreamingStats(); }

MovingAverage::MovingAverage(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("MovingAverage: capacity must be positive");
  }
}

void MovingAverage::add(double x) {
  window_.push_back(x);
  sum_ += x;
  if (window_.size() > capacity_) {
    sum_ -= window_.front();
    window_.pop_front();
  }
}

double MovingAverage::mean() const noexcept {
  return window_.empty() ? 0.0 : sum_ / static_cast<double>(window_.size());
}

namespace {
double mean_of(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) {
    s += x;
  }
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}
}  // namespace

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    return 0.0;
  }
  const double mx = mean_of(x);
  const double my = mean_of(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("linear_fit: need two equal-length series");
  }
  const double mx = mean_of(x);
  const double my = mean_of(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0.0) {
    fit.slope = 0.0;
    fit.intercept = my;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double mape(std::span<const double> measured, std::span<const double> predicted,
            double eps) {
  if (measured.size() != predicted.size()) {
    throw std::invalid_argument("mape: size mismatch");
  }
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    if (std::abs(measured[i]) < eps) {
      continue;
    }
    total += std::abs((predicted[i] - measured[i]) / measured[i]);
    ++n;
  }
  return n ? 100.0 * total / static_cast<double>(n) : 0.0;
}

double rmse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("rmse: size mismatch");
  }
  if (a.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double cross_correlation(std::span<const double> x, std::span<const double> y,
                         std::size_t lag) {
  if (x.size() != y.size() || x.size() <= lag + 1) {
    return 0.0;
  }
  const std::size_t n = x.size() - lag;
  std::vector<double> xs(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(n));
  std::vector<double> ys(y.begin() + static_cast<std::ptrdiff_t>(lag), y.end());
  return pearson(xs, ys);
}

double quantile(std::vector<double> values, double p) {
  if (values.empty()) {
    throw std::invalid_argument("quantile: empty input");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("quantile: p out of [0,1]");
  }
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace procap
