// stats.hpp — streaming and batch statistics used across procap.
//
// The progress Monitor, the power-policy daemon and the experiment harness
// all accumulate long streams of samples; StreamingStats provides O(1)
// memory single-pass moments (Welford).  The model-evaluation code needs
// correlation, linear regression and error metrics on small vectors.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace procap {

/// Single-pass mean / variance / extrema accumulator (Welford's algorithm;
/// numerically stable for long streams).
class StreamingStats {
 public:
  /// Add one observation.
  void add(double x);

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const StreamingStats& other);

  /// Number of observations.
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  /// Arithmetic mean; 0 if empty.
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  /// Square root of variance().
  [[nodiscard]] double stddev() const noexcept;
  /// Smallest observation; +inf if empty.
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest observation; -inf if empty.
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sum of observations.
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  /// Coefficient of variation (stddev / |mean|); 0 when mean is 0.
  [[nodiscard]] double cv() const noexcept;

  /// Reset to the empty state.
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;

 public:
  StreamingStats();
};

/// Fixed-window moving average over the most recent `capacity` samples.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t capacity);

  /// Push a sample, evicting the oldest if the window is full.
  void add(double x);

  /// Mean over the current window; 0 if empty.
  [[nodiscard]] double mean() const noexcept;
  /// Number of samples currently held (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return window_.size(); }
  /// Whether the window holds `capacity` samples.
  [[nodiscard]] bool full() const noexcept { return window_.size() == capacity_; }
  /// Window capacity.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
};

/// Result of an ordinary-least-squares line fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1].
  double r_squared = 0.0;
};

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 when either series has zero variance or fewer than 2 points.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Ordinary least squares fit; requires x.size() == y.size() >= 2.
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

/// Mean absolute percentage error of `predicted` against `measured`,
/// in percent.  Entries where |measured| < eps are skipped.
[[nodiscard]] double mape(std::span<const double> measured,
                          std::span<const double> predicted,
                          double eps = 1e-12);

/// Root-mean-square error.
[[nodiscard]] double rmse(std::span<const double> a, std::span<const double> b);

/// Normalized cross-correlation of two series at a given non-negative lag
/// (y delayed by `lag` samples relative to x).  Series are mean-centered.
[[nodiscard]] double cross_correlation(std::span<const double> x,
                                       std::span<const double> y,
                                       std::size_t lag = 0);

/// p-quantile (0 <= p <= 1) with linear interpolation; copies the input.
[[nodiscard]] double quantile(std::vector<double> values, double p);

}  // namespace procap
