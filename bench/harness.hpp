// harness.hpp — shared CLI and machine-readable reporting for benches.
//
// Every ported bench binary accepts the same flag pair:
//
//   --threads N        concurrent trial executors for exp::sweep
//                      (default: one per hardware thread)
//   --bench-json PATH  write a BENCH_<name>.json report for trend
//                      tracking (tools/check_bench.py gates CI on it)
//   --short            CI smoke grid: fewer caps/seeds, shape checks
//                      reported but not enforced (grids that small are
//                      not the shapes the full run asserts)
//
// The JSON schema (all keys stable, consumed by tools/check_bench.py):
//
//   {
//     "bench": "fig4_model_vs_measured",
//     "threads": 8, "trials": 330,
//     "wall_s": 1.23, "trials_per_s": 268.3,
//     "short_grid": false, "shape_failures": 0,
//     "metrics": {"lammps.mape_pct": 23.1, ...},
//     "metric_gates": {"lammps.mape_pct": [0, 40], ...}
//   }
//
// "metric_gates" (optional) carries [min, max] acceptance bands recorded
// with BenchReport::gate().  check_bench.py enforces the *baseline's*
// bands against the candidate's metrics, so a committed baseline gates
// absolute correctness (not just perf trends) in CI.
#pragma once

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/sweep.hpp"
#include "shape_check.hpp"

namespace procap::bench {

/// Options shared by every bench binary.
struct HarnessOptions {
  unsigned threads = 0;     ///< 0 = hardware concurrency
  std::string bench_json;   ///< empty = no report written
  bool short_grid = false;  ///< CI smoke grid
};

inline void print_harness_usage(const char* argv0) {
  std::cout << "usage: " << argv0
            << " [--threads N] [--bench-json PATH] [--short]\n";
}

/// Parse the shared flags; exits with status 2 on bad usage.
inline HarnessOptions parse_harness_args(int argc, char** argv) {
  HarnessOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      const long n = std::atol(value("--threads").c_str());
      if (n < 1) {
        std::cerr << argv[0] << ": --threads must be >= 1\n";
        std::exit(2);
      }
      options.threads = static_cast<unsigned>(n);
    } else if (arg == "--bench-json") {
      options.bench_json = value("--bench-json");
    } else if (arg == "--short") {
      options.short_grid = true;
    } else if (arg == "--help" || arg == "-h") {
      print_harness_usage(argv[0]);
      std::exit(0);
    } else {
      std::cerr << argv[0] << ": unknown flag " << arg << "\n";
      print_harness_usage(argv[0]);
      std::exit(2);
    }
  }
  return options;
}

/// Sweep options derived from the CLI flags.
inline exp::SweepOptions sweep_options(const HarnessOptions& options) {
  exp::SweepOptions sweep;
  sweep.threads = options.threads;
  return sweep;
}

/// Accumulates headline metrics and sweep stats; writes the JSON report.
class BenchReport {
 public:
  BenchReport(std::string name, HarnessOptions options)
      : name_(std::move(name)),
        options_(std::move(options)),
        start_(std::chrono::steady_clock::now()) {}

  /// Record one headline metric (figure-level summary, not per-row data).
  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Record a metric together with its [min_ok, max_ok] acceptance band.
  /// The band is written to "metric_gates" (enforced by check_bench.py
  /// against future candidates) and checked here as a shape check, so a
  /// full run fails immediately when it leaves its own band.
  void gate(const std::string& key, double value, double min_ok,
            double max_ok) {
    metric(key, value);
    gates_.push_back(Gate{key, min_ok, max_ok});
    std::ostringstream label;
    label << key << " in [" << min_ok << ", " << max_ok << "], got "
          << value;
    shape_check(label.str(), value >= min_ok && value <= max_ok);
  }

  /// Account one sweep's trials/threads into the totals.
  template <class R>
  void record_sweep(const exp::SweepResult<R>& result) {
    trials_ += result.size();
    threads_ = std::max(threads_, result.threads);
    for (const exp::TrialFailure& failure : result.failures) {
      std::cerr << name_ << ": trial " << failure.index
                << " failed: " << failure.message << "\n";
      ++trial_failures_;
    }
  }

  [[nodiscard]] const HarnessOptions& options() const { return options_; }

  /// Finish the bench: print the wall/trial summary, write the JSON
  /// report if requested, and fold shape-check results into the exit
  /// code (short grids report but do not enforce shape checks).
  int finish() {
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start_;
    const double wall_s = wall.count();
    const int shape_exit = shape_summary();
    std::cout << "bench: " << trials_ << " trials in " << wall_s << " s ("
              << (wall_s > 0.0 ? static_cast<double>(trials_) / wall_s
                               : 0.0)
              << " trials/s, " << threads_ << " threads)\n";
    if (!options_.bench_json.empty() && !write_json(wall_s)) {
      std::cerr << name_ << ": cannot write " << options_.bench_json
                << "\n";
      return 1;
    }
    if (trial_failures_ > 0) {
      return 1;
    }
    if (options_.short_grid && shape_exit != 0) {
      std::cout << "short grid: shape checks reported, not enforced\n";
      return 0;
    }
    return shape_exit;
  }

 private:
  [[nodiscard]] bool write_json(double wall_s) const {
    std::ostringstream body;
    body << "{\n"
         << "  \"bench\": \"" << name_ << "\",\n"
         << "  \"threads\": " << threads_ << ",\n"
         << "  \"trials\": " << trials_ << ",\n"
         << "  \"wall_s\": " << wall_s << ",\n"
         << "  \"trials_per_s\": "
         << (wall_s > 0.0 ? static_cast<double>(trials_) / wall_s : 0.0)
         << ",\n"
         << "  \"short_grid\": " << (options_.short_grid ? "true" : "false")
         << ",\n"
         << "  \"shape_failures\": " << g_failures << ",\n"
         << "  \"trial_failures\": " << trial_failures_ << ",\n"
         << "  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      body << (i == 0 ? "\n" : ",\n") << "    \"" << metrics_[i].first
           << "\": " << metrics_[i].second;
    }
    body << (metrics_.empty() ? "" : "\n  ") << "}";
    if (!gates_.empty()) {
      body << ",\n  \"metric_gates\": {";
      for (std::size_t i = 0; i < gates_.size(); ++i) {
        body << (i == 0 ? "\n" : ",\n") << "    \"" << gates_[i].key
             << "\": [" << gates_[i].min_ok << ", " << gates_[i].max_ok
             << "]";
      }
      body << "\n  }";
    }
    body << "\n}\n";
    std::ofstream out(options_.bench_json);
    if (!out) {
      return false;
    }
    out << body.str();
    return static_cast<bool>(out);
  }

  struct Gate {
    std::string key;
    double min_ok = 0.0;
    double max_ok = 0.0;
  };

  std::string name_;
  HarnessOptions options_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<Gate> gates_;
  std::size_t trials_ = 0;
  std::size_t trial_failures_ = 0;
  unsigned threads_ = 1;
};

}  // namespace procap::bench
