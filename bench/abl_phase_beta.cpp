// Extension bench: per-phase characterization of a phased application.
//
// The paper observes that QMCPACK's phases "could have a different number
// of blocks to compute and distinct performance characteristics"
// (Section IV-C) and tags progress samples with their phase.  This bench
// closes the loop the paper leaves open: characterize each phase
// separately (its own beta), and show that
//
//   1. under one constant package cap, the phases lose progress by very
//      different factors — a single whole-app number hides this;
//   2. per-phase Eq.-(7) predictions track each phase's measured loss,
//      while applying the DMC's beta to every phase mispredicts the
//      memory-leaning VMC1 badly.
//
// Uses the Monitor's per-phase rate attribution (progress samples carry
// phase tags, as the paper's instrumentation does).
#include <cmath>
#include <iostream>
#include <map>
#include <memory>

#include "apps/app.hpp"
#include "exp/measure.hpp"
#include "exp/rig.hpp"
#include "model/progress_model.hpp"
#include "policy/daemon.hpp"
#include "policy/schedule_shapes.hpp"
#include "progress/monitor.hpp"
#include "shape_check.hpp"
#include "util/table.hpp"

namespace {

using namespace procap;

// Single-phase model for phase `p` of the QMCPACK spec (unbounded).
apps::AppModel phase_only(const apps::AppModel& full, std::size_t p) {
  apps::AppModel out = full;
  apps::PhaseSpec phase = full.spec.phases.at(p);
  phase.iterations = apps::kUnbounded;
  out.spec.phases = {phase};
  out.spec.name = full.spec.name + "-" + phase.name;
  return out;
}

// Mean per-phase rates of a full (3-phase) run under `schedule`.
std::map<int, double> phased_rates(std::unique_ptr<policy::CapSchedule> s,
                                   Seconds duration) {
  exp::SimRig rig;
  const auto full = apps::qmcpack();
  apps::SimApp app(rig.package(), rig.broker(), full.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), "qmcpack", rig.time());
  policy::PowerPolicyDaemon daemon(rig.rapl(), rig.time(), std::move(s));
  daemon.attach(rig.engine());
  rig.engine().every(kNanosPerSecond, [&](Nanos) { monitor.poll(); });
  rig.engine().run_until([&] { return app.done(); }, to_nanos(duration));
  monitor.poll();

  std::map<int, double> means;
  for (const auto& [phase, series] : monitor.phase_rates()) {
    // Skip the first window of each phase (transition window).
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 1; i < series.size(); ++i) {
      sum += series[i].value;
      ++n;
    }
    means[phase] = n ? sum / static_cast<double>(n) : 0.0;
  }
  return means;
}

}  // namespace

int main() {
  using bench::shape_check;
  constexpr Watts kCap = 70.0;
  std::cout << "== Extension: per-phase beta and phase-aware prediction ==\n"
            << "QMCPACK performance-NiO, constant " << kCap
            << " W cap vs uncapped;\nper-phase rates from the monitor's "
               "phase attribution.\n\n";

  const auto full = apps::qmcpack();
  const char* phase_names[] = {"VMC1", "VMC2", "DMC"};

  // Per-phase characterization (each phase as its own workload).
  double beta[3];
  double p_uncapped[3];
  double r_uncapped_char[3];
  for (std::size_t p = 0; p < 3; ++p) {
    const auto c = exp::characterize(phase_only(full, p), 1.6e9, 10.0);
    beta[p] = c.beta;
    p_uncapped[p] = c.power_uncapped;
    r_uncapped_char[p] = c.rate_uncapped;
  }

  // Full-app runs: uncapped and capped.
  const auto uncapped =
      phased_rates(std::make_unique<policy::UncappedSchedule>(), 120.0);
  const auto capped =
      phased_rates(std::make_unique<policy::ConstantCap>(kCap), 200.0);

  TablePrinter table({"phase", "beta", "uncapped blk/s", "capped blk/s",
                      "measured loss %", "phase-aware pred %",
                      "DMC-beta pred %"});
  double measured_loss[3];
  double aware_pred[3];
  double naive_pred[3];
  const double beta_dmc = beta[2];
  for (std::size_t p = 0; p < 3; ++p) {
    const int id = static_cast<int>(p);
    const double r0 = uncapped.at(id);
    const double r1 = capped.at(id);
    measured_loss[p] = (1.0 - r1 / r0) * 100.0;

    auto predict = [&](double b) {
      model::ModelParams params;
      params.beta = b;
      params.alpha = 2.0;
      params.p_core_max = b * p_uncapped[p];
      params.r_max = r_uncapped_char[p];
      const double r = model::progress_at_core_power(
          params, model::effective_core_cap(b, kCap));
      return (1.0 - r / params.r_max) * 100.0;
    };
    aware_pred[p] = predict(beta[p]);
    naive_pred[p] = predict(beta_dmc);

    table.add_row({phase_names[p], num(beta[p], 2), num(r0, 1), num(r1, 1),
                   num(measured_loss[p], 1), num(aware_pred[p], 1),
                   num(naive_pred[p], 1)});
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n";
  shape_check("phases have distinct betas (VMC1 at least 0.2 below DMC)",
              beta[0] < beta[2] - 0.2);
  // Two effects compete under a package cap: VMC1's low beta makes it
  // *less* frequency-sensitive, but its memory power drags its settled
  // frequency *lower* (the application-aware RAPL effect of Fig. 2).
  // Net: VMC1 still loses least, but by far less than beta alone implies.
  shape_check("VMC1 loses no more progress than DMC under the same cap",
              measured_loss[0] < measured_loss[2] + 1.0);
  shape_check("...but the gap is much smaller than the beta gap implies "
              "(the Fig. 2 frequency effect pushes back)",
              measured_loss[0] > 0.6 * measured_loss[2]);
  shape_check("phase-aware prediction beats the single (DMC) beta for VMC1 "
              "by a wide margin",
              std::abs(aware_pred[0] - measured_loss[0]) <
                  0.75 * std::abs(naive_pred[0] - measured_loss[0]));
  shape_check("per-phase predictions are ordered like the measurements "
              "(VMC1 < DMC)",
              aware_pred[0] < aware_pred[2] &&
                  measured_loss[0] < measured_loss[2]);
  return bench::shape_summary();
}
