// Tables III, IV and V reproduction: the interview-derived
// categorization.
//
// Table III is the questionnaire posed to application specialists;
// Table IV the per-application answers; Table V the resulting category
// and online-performance metric.  procap encodes the answers as
// progress::AppTraits (apps/suite.cpp) and derives the categories with
// progress::categorize(); this bench prints all three tables and checks
// the derivation reproduces the paper's Table V exactly.
#include <iostream>
#include <map>
#include <string>

#include "apps/suite.hpp"
#include "progress/category.hpp"
#include "shape_check.hpp"
#include "util/table.hpp"

namespace {

const char* kQuestions[] = {
    "Q1  Is there a well-defined FOM for the application?",
    "Q2  Can online performance correlated with FOM/time be measured?",
    "Q3  Does online performance measure progress toward the goal?",
    "Q4  Is execution time predictable from a performance model?",
    "Q5  Is the number of loop iterations decided before execution?",
    "Q6  Do loop iterations proceed uniformly?",
    "Q7  Are there clearly demarcated phases or components?",
    "Q8  What system resource limits the application?",
};

// Paper Table V rows: app -> (category label, online metric).
const std::map<std::string, std::pair<std::string, std::string>> kTableV = {
    {"qmcpack", {"1", "Blocks per second"}},
    {"openmc", {"1", "Particles per second"}},
    {"amg", {"2", "Conjugate gradient iterations per second"}},
    {"lammps", {"1", "Atom timesteps per second"}},
    {"candle", {"1/2", "Epochs per second (training phase)"}},
    {"stream", {"1", "Iterations per second"}},
    {"urban", {"3", "N/A"}},
    {"nek5000", {"3", "N/A"}},
    {"hacc", {"3", "N/A"}},
};

std::string yn(bool v) { return v ? "Y" : "N"; }

}  // namespace

int main() {
  using namespace procap;
  using bench::shape_check;

  std::cout << "== Table III: questions posed to application specialists ==\n";
  for (const char* q : kQuestions) {
    std::cout << "  " << q << "\n";
  }

  std::cout << "\n== Table IV: summary of responses ==\n";
  TablePrinter responses(
      {"Application", "1", "2", "3", "4", "5", "6", "7", "8"});
  const auto all_traits = apps::interview_traits();
  for (const auto& t : all_traits) {
    responses.add_row({t.name, yn(t.has_fom), yn(t.measurable_online),
                       yn(t.relates_to_science), yn(t.predictable_time),
                       yn(t.iterations_known), yn(t.uniform_iterations),
                       yn(t.has_phases), t.bound_by});
  }
  responses.print(std::cout);

  std::cout << "\n== Table V: categorization and online performance ==\n";
  TablePrinter categories({"Application", "Category (derived)",
                           "Category (paper)", "Online metric (paper)"});
  bool all_match = true;
  for (const auto& t : all_traits) {
    const auto derived = progress::categorize(t);
    const auto derived_label =
        std::to_string(static_cast<int>(derived));
    const auto& [paper_label, metric] = kTableV.at(t.name);
    // CANDLE is "1/2" in the paper (epoch rate is measurable but does not
    // convey accuracy); the trait derivation lands on the conservative 2.
    const bool match = paper_label == derived_label ||
                       (paper_label == "1/2" && derived_label == "2");
    all_match &= match;
    categories.add_row({t.name, derived_label, paper_label, metric});
  }
  categories.print(std::cout);

  std::cout << "\nShape checks:\n";
  shape_check("all nine applications of Table IV are encoded",
              all_traits.size() == 9);
  shape_check("derived categories reproduce paper Table V for every app",
              all_match);
  shape_check(
      "the three Category-3 apps are URBAN, Nek5000, HACC",
      progress::categorize(all_traits[6]) == progress::Category::kCategory3 &&
          progress::categorize(all_traits[7]) ==
              progress::Category::kCategory3 &&
          progress::categorize(all_traits[8]) ==
              progress::Category::kCategory3);
  return bench::shape_summary();
}
