// Extension bench: the DRAM RAPL domain — the package cap's mirror image.
//
// The paper caps the *package* domain and observes that compute-bound
// applications suffer most (their progress scales with core frequency).
// RAPL's other commonly exposed domain is DRAM (paper Section V-A); this
// bench runs the complementary experiment: sweep DRAM caps and show the
// asymmetry inverts — memory-bound applications collapse with the
// bandwidth throttle while compute-bound ones barely notice.
#include <cmath>
#include <iostream>
#include <vector>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/rig.hpp"
#include "progress/monitor.hpp"
#include "shape_check.hpp"
#include "util/table.hpp"

namespace {

using namespace procap;

struct Outcome {
  double rate_norm = 0.0;  // capped rate / uncapped rate
  Watts dram_power = 0.0;
  double throttle = 1.0;
};

Outcome run(const apps::AppModel& app, Watts dram_cap) {
  exp::SimRig rig;
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), app.spec.name,
                            rig.time());
  rig.engine().every(kNanosPerSecond, [&](Nanos) { monitor.poll(); });

  rig.engine().run_for(to_nanos(10.0));
  const double uncapped = monitor.rates().mean_in(to_nanos(3.0),
                                                  to_nanos(10.0));
  rig.rapl().set_dram_cap(dram_cap);
  rig.engine().run_for(to_nanos(20.0));
  Outcome out;
  out.rate_norm = monitor.rates().mean_in(to_nanos(16.0), to_nanos(30.0)) /
                  uncapped;
  out.dram_power = rig.package().dram_power();
  out.throttle = rig.package().memory_throttle();
  return out;
}

}  // namespace

int main() {
  using bench::shape_check;
  std::cout << "== Extension: DRAM-domain capping (package cap's mirror) ==\n"
            << "Uncapped DRAM power: STREAM ~33 W, LAMMPS ~4 W.\n\n";

  const std::vector<Watts> caps = {25.0, 20.0, 15.0, 10.0};
  TablePrinter table({"DRAM cap W", "stream rate (norm)", "stream throttle",
                      "lammps rate (norm)"});
  std::vector<Outcome> stream_out;
  std::vector<Outcome> lammps_out;
  for (const Watts cap : caps) {
    stream_out.push_back(run(apps::stream(), cap));
    lammps_out.push_back(run(apps::lammps(), cap));
    table.add_row({num(cap, 0), num(stream_out.back().rate_norm, 3),
                   num(stream_out.back().throttle, 3),
                   num(lammps_out.back().rate_norm, 3)});
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n";
  shape_check("stream: progress falls monotonically with the DRAM cap",
              stream_out[0].rate_norm > stream_out[1].rate_norm &&
                  stream_out[1].rate_norm > stream_out[2].rate_norm &&
                  stream_out[2].rate_norm > stream_out[3].rate_norm);
  shape_check("stream: a 10 W DRAM cap costs >50% of progress",
              stream_out[3].rate_norm < 0.5);
  bool lammps_untouched = true;
  for (const auto& out : lammps_out) {
    lammps_untouched &= out.rate_norm > 0.95;
  }
  shape_check("lammps: unaffected at every DRAM cap (the inverse of the "
              "package-cap asymmetry)",
              lammps_untouched);
  shape_check("stream: throttle engaged and DRAM power held near the cap",
              stream_out[2].throttle < 1.0 &&
                  std::abs(stream_out[2].dram_power - 15.0) < 2.5);
  return bench::shape_summary();
}
