// Figure 2 reproduction: RAPL performs application-aware power management.
//
// LAMMPS (compute-bound) and STREAM (memory-bound) run under an identical
// step cap.  Under the cap, RAPL settles the compute-bound application at
// a HIGHER core frequency: the memory-bound application's bandwidth-
// proportional uncore power eats the package budget, leaving less for the
// cores.
#include <cmath>
#include <iostream>
#include <memory>

#include "exp/measure.hpp"
#include "policy/schedule_shapes.hpp"
#include "shape_check.hpp"
#include "util/table.hpp"

int main() {
  using namespace procap;
  using bench::shape_check;
  constexpr Watts kCap = 80.0;
  std::cout << "== Figure 2: RAPL application-aware power management ==\n"
            << "Step cap: uncapped 10 s, then " << kCap
            << " W for 20 s.  Frequencies are 1-s means.\n\n";

  auto run = [kCap](const apps::AppModel& app) {
    exp::RunOptions opt;
    opt.duration = 30.0;
    return exp::run_under_schedule(
        app, std::make_unique<policy::ConstantCap>(kCap, 10.0), opt);
  };
  const auto lammps = run(apps::lammps());
  const auto stream = run(apps::stream());

  TablePrinter table({"t_seconds", "cap_W", "lammps_MHz", "stream_MHz"});
  for (int s = 0; s < 30; ++s) {
    const auto t0 = to_nanos(static_cast<double>(s));
    const auto t1 = to_nanos(static_cast<double>(s + 1));
    table.add_row({std::to_string(s),
                   s < 10 ? std::string("none") : num(kCap, 0),
                   num(lammps.frequency.mean_in(t0, t1), 0),
                   num(stream.frequency.mean_in(t0, t1), 0)});
  }
  table.print(std::cout);

  const double f_lammps_capped = lammps.mean_frequency(18.0, 30.0);
  const double f_stream_capped = stream.mean_frequency(18.0, 30.0);
  const double p_lammps = lammps.mean_power(18.0, 30.0);
  const double p_stream = stream.mean_power(18.0, 30.0);
  std::cout << "\ncapped steady state: lammps " << num(f_lammps_capped, 0)
            << " MHz @ " << num(p_lammps, 1) << " W, stream "
            << num(f_stream_capped, 0) << " MHz @ " << num(p_stream, 1)
            << " W\n\nShape checks:\n";

  shape_check("both applications run at 3300 MHz while uncapped",
              lammps.mean_frequency(2.0, 10.0) > 3250.0 &&
                  stream.mean_frequency(2.0, 10.0) > 3250.0);
  shape_check("RAPL holds both apps near the cap (within 5 W)",
              std::abs(p_lammps - kCap) < 5.0 &&
                  std::abs(p_stream - kCap) < 5.0);
  shape_check("compute-bound app gets a HIGHER frequency under the same cap "
              "(paper Fig. 2)",
              f_lammps_capped > f_stream_capped + 200.0);
  return bench::shape_summary();
}
