// Trace-pipeline benchmark: what does causal cap-to-effect tracing cost
// the monitored cluster control loop?
//
// The baseline is the loop cluster_sim actually runs when operators
// watch a cluster: run_epoch, then the telemetry roll-up and the
// time-series sample (the plane /metrics and /cluster.json serve
// from).  Tracing ships as an increment on that observability plane —
// nobody enables flow tracing on an unmonitored cluster — so the
// contract is measured against the monitored loop, not a bare
// headless sim whose synthetic node step costs tens of nanoseconds.
//
// Each trial runs the identical churning cluster twice — tracer off,
// then tracer on (order alternated by trial index to cancel cache and
// scheduling bias) — and times both runs with PROCESS CPU TIME, not
// wall clock: on a shared machine the scheduler adds double-digit
// percent wall noise to a ~10 ms run, which would drown a 3% contract.
// CPU time charges exactly the work the process did.  Trials also run
// serially regardless of --threads (co-running trials contend for
// cache and poison paired comparisons); --threads still sizes the
// harness report.  On top of that, noise is strictly additive, so the
// headline estimator takes, per seed, the cheapest off run against the
// cheapest on run across repeats (min-of-N), then the median across
// seeds.  The overhead contract (DESIGN.md §14) is tracing-on within
// 3% of tracing-off at 256 nodes, enforced as a shape check on the
// full grid.
//
// Reported metrics:
//   overhead_pct_median — median across seeds of min-on/min-off - 1;
//   cpu_on_ms_mean / cpu_off_ms_mean — per-run CPU cost;
//   flows_closed / flows_kept / flows_orphaned — tracer work actually
//                         exercised (shape-checked > 0, so the "on"
//                         half is not a no-op);
//   invariant_violations — must be 0.
//
// Tracing must also be invisible to the simulation: both halves of a
// trial must produce the identical allocation-trace hash, enforced
// even on the short grid.
#include <ctime>

#include <algorithm>
#include <iostream>
#include <sstream>
#include <vector>

#include "cluster/manager.hpp"
#include "cluster/telemetry.hpp"
#include "exp/sweep.hpp"
#include "harness.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "shape_check.hpp"
#include "util/table.hpp"

namespace {

struct TrialResult {
  double wall_off_s = 0.0;
  double wall_on_s = 0.0;
  std::uint64_t hash_off = 0;
  std::uint64_t hash_on = 0;
  std::uint64_t flows_closed = 0;
  std::uint64_t flows_kept = 0;
  std::uint64_t flows_orphaned = 0;
  std::uint64_t violations = 0;
};

/// Seconds of CPU consumed by every thread of this process so far.
double process_cpu_s() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

procap::fault::FaultPlan churn_plan(std::uint64_t seed) {
  // Light churn: enough deaths to exercise the orphan path without
  // drowning the steady-state flow cost being measured.
  std::istringstream text(
      "seed " + std::to_string(seed) + "\n"
      "node 8 16  crash frac 0.04\n"
      "node 20 inf crash frac 0.02\n"
      "node 0 inf slow frac 0.05 factor 0.7\n");
  return procap::fault::FaultPlan::parse(text);
}

double run_once(const procap::cluster::ClusterConfig& config, unsigned epochs,
                procap::obs::FlowTracer* tracer, TrialResult& result,
                bool traced) {
  procap::cluster::ClusterPowerManager manager(config);
  // The monitored plane, mirroring cluster_sim --serve.  The registry
  // is the process-wide one (its constructor is private); instruments
  // are atomic, and nothing here reads values back, so concurrent
  // sweep trials sharing it costs each run the same work it costs
  // cluster_sim.
  procap::obs::Registry& registry = procap::obs::Registry::global();
  procap::obs::TimeSeriesStore ts_store(registry);
  procap::cluster::ClusterTelemetry telemetry(registry);
  if (tracer != nullptr) {
    manager.set_tracer(tracer);
    telemetry.set_tracer(tracer);
  }
  const double start = process_cpu_s();
  for (unsigned e = 0; e < epochs; ++e) {
    manager.run_epoch();
    telemetry.update(manager);
    ts_store.sample(manager.now());
  }
  const double cpu = process_cpu_s() - start;
  result.violations += manager.invariant_violations();
  if (traced) {
    result.hash_on = manager.trace_hash();
  } else {
    result.hash_off = manager.trace_hash();
  }
  return cpu;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace procap;
  using bench::shape_check;
  const auto options = bench::parse_harness_args(argc, argv);
  bench::BenchReport report("trace_pipeline", options);

  const unsigned nodes = options.short_grid ? 96 : 256;
  const unsigned epochs = options.short_grid ? 12 : 50;
  const std::vector<std::uint64_t> seeds =
      options.short_grid ? std::vector<std::uint64_t>{21, 22}
                         : std::vector<std::uint64_t>{21, 22, 23};
  const std::size_t repeats = options.short_grid ? 3 : 15;

  std::cout << "== Trace pipeline: cap-to-effect tracing overhead ==\n"
            << nodes << " nodes, " << epochs << " epochs, " << seeds.size()
            << " seeds x " << repeats << " paired (off+on) repeats\n\n";

  const std::size_t grid = seeds.size() * repeats;
  const auto swept = exp::sweep<TrialResult>(
      grid,
      [&](std::size_t i) {
        cluster::ClusterConfig config;
        config.nodes = nodes;
        config.global_budget = 118.0 * nodes;  // slight scarcity: caps move
        config.jobs = nodes / 8;
        config.strategy = "demand";
        config.seed = seeds[i / repeats];
        config.threads = 1;  // the sweep already owns the parallelism
        config.plan = churn_plan(config.seed);

        obs::FlowTracerOptions trace_options;
        trace_options.seed = config.seed;
        obs::FlowTracer tracer(trace_options);

        TrialResult r;
        // Alternate which half runs first so warm-cache advantage does
        // not systematically favor one side.
        if (i % 2 == 0) {
          r.wall_off_s = run_once(config, epochs, nullptr, r, false);
          r.wall_on_s = run_once(config, epochs, &tracer, r, true);
        } else {
          r.wall_on_s = run_once(config, epochs, &tracer, r, true);
          r.wall_off_s = run_once(config, epochs, nullptr, r, false);
        }
        const obs::FlowTracerStats stats = tracer.stats();
        r.flows_closed = stats.closed;
        r.flows_kept = stats.kept;
        r.flows_orphaned = stats.orphaned;
        return r;
      },
      [&] {
        // Serial trials: paired CPU-time comparison breaks down when
        // co-running trials fight over cache (see header comment).
        exp::SweepOptions sweep = bench::sweep_options(options);
        sweep.threads = 1;
        return sweep;
      }());
  report.record_sweep(swept);
  if (!swept.ok()) {
    return report.finish();
  }

  std::vector<double> seed_min_off(seeds.size(), 1e300);
  std::vector<double> seed_min_on(seeds.size(), 1e300);
  double off_sum = 0.0;
  double on_sum = 0.0;
  std::uint64_t closed = 0;
  std::uint64_t kept = 0;
  std::uint64_t orphaned = 0;
  std::uint64_t violations = 0;
  bool transparent = true;
  TablePrinter table(
      {"seed", "rep", "off cpu ms", "on cpu ms", "overhead %", "identical"});
  for (std::size_t i = 0; i < grid; ++i) {
    const TrialResult& r = swept.at(i);
    const double ratio =
        r.wall_off_s > 0.0 ? r.wall_on_s / r.wall_off_s - 1.0 : 0.0;
    seed_min_off[i / repeats] = std::min(seed_min_off[i / repeats],
                                         r.wall_off_s);
    seed_min_on[i / repeats] = std::min(seed_min_on[i / repeats],
                                        r.wall_on_s);
    off_sum += r.wall_off_s;
    on_sum += r.wall_on_s;
    closed += r.flows_closed;
    kept += r.flows_kept;
    orphaned += r.flows_orphaned;
    violations += r.violations;
    const bool identical = r.hash_off == r.hash_on;
    transparent &= identical;
    table.add_row({std::to_string(seeds[i / repeats]),
                   std::to_string(i % repeats), num(r.wall_off_s * 1e3, 1),
                   num(r.wall_on_s * 1e3, 1), num(ratio * 100.0, 2),
                   identical ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::vector<double> seed_ratios;
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    seed_ratios.push_back(seed_min_off[s] > 0.0
                              ? seed_min_on[s] / seed_min_off[s] - 1.0
                              : 0.0);
    std::cout << "\nseed " << seeds[s] << ": min off cpu "
              << num(seed_min_off[s] * 1e3, 2) << " ms, min on cpu "
              << num(seed_min_on[s] * 1e3, 2) << " ms -> "
              << num(seed_ratios.back() * 100.0, 2) << "%";
  }
  std::sort(seed_ratios.begin(), seed_ratios.end());
  const double overhead = seed_ratios[seed_ratios.size() / 2];
  const auto denom = static_cast<double>(grid);
  std::cout << "\n\nmedian tracing overhead (min-of-" << repeats
            << " per seed): " << num(overhead * 100.0, 2) << "%  (" << closed
            << " flows closed, " << kept << " kept, " << orphaned
            << " orphaned)\n";
  report.metric("overhead_pct_median", overhead * 100.0);
  report.metric("cpu_off_ms_mean", off_sum / denom * 1e3);
  report.metric("cpu_on_ms_mean", on_sum / denom * 1e3);
  report.metric("flows_closed", static_cast<double>(closed));
  report.metric("flows_kept", static_cast<double>(kept));
  report.metric("flows_orphaned", static_cast<double>(orphaned));
  report.metric("invariant_violations", static_cast<double>(violations));

  std::cout << "\nShape checks:\n";
  shape_check("tracer exercised: flows closed and kept",
              closed > 0 && kept > 0);
  shape_check("orphan path exercised: some flows orphaned", orphaned > 0);
  shape_check("conservation: no invariant violations", violations == 0);
  shape_check("overhead contract: tracing-on within 3% of tracing-off",
              overhead <= 0.03);
  shape_check("tracing is transparent: identical allocation traces",
              transparent);
  // Transparency is a correctness property, not a shape: enforce it
  // even on the short grid (finish() relaxes shape checks there).
  if (!transparent) {
    return 1;
  }
  return report.finish();
}
