// shape_check.hpp — PASS/FAIL assertions for benchmark harnesses.
//
// Every bench binary reproduces a paper artifact and then checks the
// *shape* of the result (who wins, direction of error, where crossovers
// fall) rather than absolute numbers.  Failures set a nonzero process
// exit code so `for b in build/bench/*; do $b; done` surfaces regressions.
#pragma once

#include <iostream>
#include <string>

namespace procap::bench {

inline int g_failures = 0;

/// Record and print one shape check.
inline void shape_check(const std::string& what, bool ok) {
  std::cout << (ok ? "  [PASS] " : "  [FAIL] ") << what << "\n";
  if (!ok) {
    ++g_failures;
  }
}

/// Print the summary line and return the process exit code.
inline int shape_summary() {
  if (g_failures == 0) {
    std::cout << "\nAll shape checks passed.\n";
  } else {
    std::cout << "\n" << g_failures << " shape check(s) FAILED.\n";
  }
  return g_failures == 0 ? 0 : 1;
}

}  // namespace procap::bench
