// Extension bench: composite progress for Category-3 applications.
//
// The paper declares URBAN/HACC unmeasurable with a single metric
// (Category 3) and proposes "modeling progress as a weighted combination
// of the progress of individual components" (Section VIII).  This bench
// runs the URBAN model (CFD + building-energy components, timescales
// ~60x apart, CFD cost wandering with adaptive stepping) under a step
// power cap and compares three candidate progress signals:
//
//   * the fast component's own rate  — too noisy (Category 3 verdict);
//   * the slow component's own rate  — too coarse to be responsive;
//   * the weighted composite         — stable AND tracks the cap.
#include <cmath>
#include <iostream>
#include <memory>

#include "apps/multi.hpp"
#include "exp/rig.hpp"
#include "policy/daemon.hpp"
#include "policy/schedule_shapes.hpp"
#include "progress/analysis.hpp"
#include "progress/category.hpp"
#include "shape_check.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace procap;
  using bench::shape_check;
  std::cout << "== Extension: composite progress for URBAN (Category 3) ==\n"
            << "Step cap: uncapped 30 s / 60 W 30 s, repeating; 180 s run.\n\n";

  exp::SimRig rig;
  const auto model = apps::urban();
  auto instance = apps::launch(model, rig.package(), rig.broker(), rig.time(),
                               hw::CpuSpec::skylake24().f_nominal, 5);
  policy::PowerPolicyDaemon daemon(
      rig.rapl(), rig.time(),
      std::make_unique<policy::StepCap>(std::nullopt, 60.0, 30.0, 30.0));
  daemon.attach(rig.engine());

  TimeSeries composite_series("composite");
  rig.engine().every(kNanosPerSecond, [&](Nanos now) {
    instance.composite->poll();
    composite_series.add(now, instance.composite->composite_rate());
  });
  rig.engine().run_for(to_nanos(180.0));

  // Windowed view for the reader.
  TablePrinter table({"t (s)", "cap W", "cfd (steps/s)", "energyplus",
                      "composite"});
  for (int t = 0; t < 170; t += 10) {
    const auto t0 = to_nanos(static_cast<double>(t));
    const auto t1 = to_nanos(static_cast<double>(t + 10));
    table.add_row({std::to_string(t), (t / 30) % 2 == 0 ? "none" : "60",
                   num(instance.monitors[0]->rates().mean_in(t0, t1), 1),
                   num(instance.monitors[1]->rates().mean_in(t0, t1), 2),
                   num(composite_series.mean_in(t0, t1), 3)});
  }
  table.print(std::cout);

  // Consistency within the uncapped segments (where a reliable metric
  // should be steady).
  auto uncapped_slice = [&](const TimeSeries& s) {
    // Bind the slices to locals: iterating `slice(...).samples()` directly
    // would dangle (C++20 range-for does not extend the inner temporary).
    TimeSeries out("s");
    const TimeSeries first = s.slice(to_nanos(5.0), to_nanos(30.0));
    const TimeSeries second = s.slice(to_nanos(65.0), to_nanos(90.0));
    for (const auto& sample : first.samples()) {
      out.add(sample.t, sample.value);
    }
    for (const auto& sample : second.samples()) {
      out.add(sample.t, sample.value);
    }
    return out;
  };
  const auto cfd_report = progress::analyze_consistency(
      uncapped_slice(instance.monitors[0]->rates()), 0.10, 0);
  const auto composite_report = progress::analyze_consistency(
      uncapped_slice(composite_series), 0.10, 0);

  // Does each signal track the cap?
  auto correlation_with_cap = [&](const TimeSeries& s) {
    std::vector<double> caps;
    std::vector<double> values;
    // Skip the first 12 s: the slow component's first window and the
    // composite's smoothing warm up there, which would otherwise inject
    // a spurious transient into the correlation.
    for (std::size_t i = 12; i < daemon.cap_series().size(); ++i) {
      const Nanos t = daemon.cap_series()[i].t;
      caps.push_back(daemon.cap_series()[i].value == 0.0
                         ? 150.0
                         : daemon.cap_series()[i].value);
      const Nanos lo = t >= to_nanos(2.0) ? t - to_nanos(2.0) : Nanos{0};
      values.push_back(s.mean_in(lo, t + to_nanos(3.0)));
    }
    return pearson(caps, values);
  };
  const double cfd_corr = correlation_with_cap(instance.monitors[0]->rates());
  const double ep_corr = correlation_with_cap(instance.monitors[1]->rates());
  const double composite_corr = correlation_with_cap(composite_series);

  std::cout << "\ncfd-alone:   cv " << num(cfd_report.cv * 100, 1)
            << "% (uncapped), cap-correlation " << num(cfd_corr, 2)
            << "\nenergyplus:  cap-correlation " << num(ep_corr, 2)
            << " (coarse: 2-3 reports per 6 s window)"
            << "\ncomposite:   cv " << num(composite_report.cv * 100, 1)
            << "% (uncapped), cap-correlation " << num(composite_corr, 2)
            << "\n\nShape checks:\n";

  shape_check("the CFD component's own metric is unreliable (cv > 12%)",
              cfd_report.cv > 0.12);
  shape_check("trace-aware categorization demotes the CFD metric to "
              "Category 3",
              progress::categorize(model.traits,
                                   instance.monitors[0]->rates(), 0.12) ==
                  progress::Category::kCategory3);
  shape_check("the composite is materially steadier (cv < 60% of CFD's)",
              composite_report.cv < 0.6 * cfd_report.cv);
  shape_check("the composite tracks the cap (corr > 0.6)",
              composite_corr > 0.6);
  shape_check("the composite tracks better than the coarse slow component",
              composite_corr > ep_corr + 0.05);
  // No single component offers both: the CFD metric tracks but is too
  // unstable to be a progress metric; the slow component is stable but
  // coarse.  Only the composite combines stability with responsiveness.
  shape_check("the composite is the only signal with cv < 20% AND "
              "cap-correlation > 0.6",
              composite_report.cv < 0.20 && composite_corr > 0.6 &&
                  !(cfd_report.cv < 0.20 && cfd_corr > 0.6));
  return bench::shape_summary();
}
