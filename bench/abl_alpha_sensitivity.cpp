// Ablation (paper Section VI-3 discussion): sensitivity of the model to
// the alpha exponent.
//
// The paper fixes alpha = 2 for all predictions but observes that the
// best-fitting value "varies between 1 and 4 depending on the range of
// the power cap being applied".  This bench fits alpha per application
// over the full cap range and separately over the mild and stringent
// halves, and reports the error of the fixed alpha = 2 choice against the
// best fit.  The (app x cap x seed) measurement grid runs through
// exp::sweep_cap_impact (one SimRig per trial, --threads workers).
#include <cmath>
#include <iostream>
#include <vector>

#include "exp/measure.hpp"
#include "exp/sweep.hpp"
#include "harness.hpp"
#include "model/calibrated.hpp"
#include "model/fit.hpp"
#include "shape_check.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace procap;
  using bench::shape_check;
  const auto options = bench::parse_harness_args(argc, argv);
  bench::BenchReport report("abl_alpha_sensitivity", options);
  const auto sweep_opt = bench::sweep_options(options);
  const int seeds = options.short_grid ? 1 : 3;
  const double cap_step = options.short_grid ? 20.0 : 10.0;
  std::cout << "== Ablation: alpha sensitivity of the progress model ==\n"
            << "Best-fit alpha via grid + golden-section on MAPE of\n"
            << "delta-progress; " << seeds << " seed(s) per cap.\n\n";

  const std::vector<std::string> names = {"lammps", "amg", "qmcpack-dmc",
                                          "stream"};
  TablePrinter table({"app", "alpha* (all caps)", "alpha* (mild)",
                      "alpha* (stringent)", "MAPE@alpha=2 %",
                      "MAPE@alpha* %"});

  struct AppData {
    model::ModelParams params;
    std::vector<model::CapObservation> observations;
  };
  std::vector<std::pair<std::string, AppData>> all_observations;

  const auto characterizations = exp::sweep<exp::Characterization>(
      names.size(),
      [&names](std::size_t i) {
        return exp::characterize(apps::by_name(names[i]), 1.6e9, 10.0);
      },
      sweep_opt);
  report.record_sweep(characterizations);

  bool all_fits_in_range = true;
  bool fit_beats_fixed_somewhere = false;
  for (std::size_t app_index = 0; app_index < names.size(); ++app_index) {
    const std::string& name = names[app_index];
    const auto& c = characterizations.at(app_index);

    model::ModelParams params;
    params.beta = c.beta;
    params.alpha = 2.0;
    params.p_core_max = c.beta * c.power_uncapped;
    params.r_max = c.rate_uncapped;

    exp::CapImpactGrid grid;
    grid.app = apps::by_name(name);
    for (Watts cap = 50.0; cap <= 140.0 + 1e-9; cap += cap_step) {
      grid.caps.push_back(cap);
    }
    for (int seed = 1; seed <= seeds; ++seed) {
      grid.seeds.push_back(static_cast<std::uint64_t>(seed));
    }
    const auto impacts = exp::sweep_cap_impact(grid, sweep_opt);
    report.record_sweep(impacts);

    std::vector<model::CapObservation> all;
    std::vector<model::CapObservation> mild;
    std::vector<model::CapObservation> stringent;
    for (std::size_t cap_index = 0; cap_index < grid.caps.size();
         ++cap_index) {
      const Watts cap = grid.caps[cap_index];
      StreamingStats stats;
      for (std::size_t seed_index = 0; seed_index < grid.seeds.size();
           ++seed_index) {
        stats.add(impacts.at(grid.index(cap_index, seed_index)).delta);
      }
      const model::CapObservation obs{
          model::effective_core_cap(c.beta, cap), stats.mean()};
      if (obs.measured_delta <= 0.01 * params.r_max) {
        continue;  // cap had no measurable effect; nothing to fit
      }
      all.push_back(obs);
      (cap >= 100.0 ? mild : stringent).push_back(obs);
    }
    if (all.size() < 3) {
      std::cout << name << ": too few effective caps to fit, skipped\n";
      continue;
    }
    const auto fit_all = model::fit_alpha(params, all);
    const auto fit_mild =
        mild.size() >= 2 ? model::fit_alpha(params, mild) : fit_all;
    const auto fit_str =
        stringent.size() >= 2 ? model::fit_alpha(params, stringent) : fit_all;
    const double mape_fixed =
        model::summarize(model::evaluate(params, all)).mape;

    table.add_row({name, num(fit_all.alpha, 2), num(fit_mild.alpha, 2),
                   num(fit_str.alpha, 2), num(mape_fixed, 1),
                   num(fit_all.mape, 1)});
    report.metric(name + ".alpha_fit", fit_all.alpha);
    report.metric(name + ".mape_fixed_pct", mape_fixed);
    all_fits_in_range &= fit_all.alpha >= 1.0 && fit_all.alpha <= 4.0;
    fit_beats_fixed_somewhere |= fit_all.mape < mape_fixed - 1.0;
    all_observations.emplace_back(name, AppData{params, all});
  }
  table.print(std::cout);

  // The Section VIII improvement, operationalized: a piecewise-alpha
  // model calibrated from the same observations (model::CalibratedModel).
  std::cout << "\ncalibrated (piecewise-alpha, 3 bands) vs fixed alpha=2:\n";
  TablePrinter calibrated_table(
      {"app", "MAPE fixed alpha=2 %", "MAPE calibrated %", "band alphas"});
  bool calibrated_never_worse = true;
  bool calibrated_much_better_somewhere = false;
  for (const auto& [name, data] : all_observations) {
    if (data.observations.size() < 6) {
      continue;
    }
    const double fixed_mape =
        model::summarize(model::evaluate(data.params, data.observations))
            .mape;
    const model::CalibratedModel calibrated(data.params, data.observations,
                                            3);
    std::string alphas;
    for (const auto& band : calibrated.bands()) {
      alphas += (alphas.empty() ? "" : " / ") + num(band.alpha, 2);
    }
    calibrated_table.add_row({name, num(fixed_mape, 1),
                              num(calibrated.calibration_mape(), 1),
                              alphas});
    calibrated_never_worse &=
        calibrated.calibration_mape() <= fixed_mape + 1.0;
    calibrated_much_better_somewhere |=
        calibrated.calibration_mape() < 0.6 * fixed_mape;
  }
  calibrated_table.print(std::cout);

  std::cout << "\nShape checks:\n";
  shape_check("best-fit alpha lies within [1, 4] for every app "
              "(paper Section VI-3)",
              all_fits_in_range);
  shape_check("fitting alpha improves on the fixed alpha=2 for at least "
              "one app",
              fit_beats_fixed_somewhere);
  shape_check("the calibrated piecewise model is never worse than fixed "
              "alpha=2",
              calibrated_never_worse);
  shape_check("...and substantially better for at least one app",
              calibrated_much_better_somewhere);
  return report.finish();
}
