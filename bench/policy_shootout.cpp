// Controller shootout: the zoo on a level playing field.
//
// Runs every registered controller family (constant, step, target, pi,
// fft, mpc — see DESIGN.md §15) against three app classes:
//
//   lammps       compute-bound (progress tracks the cap directly)
//   stream       memory-bound  (progress barely notices the cap)
//   qmcpack-dmc  phase-alternating (the fft controller's home turf)
//
// and reports the energy-vs-progress Pareto front per app: energy from
// the trapezoid integral of the measured 1 Hz power trace, progress as
// total progress normalized to an uncapped reference run of the same
// seed.  Closed-loop controllers (target/pi) get a per-app setpoint of
// 80 % of the measured uncapped rate, so every cell chases a comparable
// goal.
//
// The committed baseline (bench/baselines/BENCH_policy_shootout.json)
// carries metric_gates: absolute [min, max] bands on the headline
// fractions that check_bench.py enforces in both CI bench lanes.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/measure.hpp"
#include "exp/sweep.hpp"
#include "harness.hpp"
#include "policy/controller.hpp"
#include "shape_check.hpp"
#include "util/table.hpp"

namespace {

using namespace procap;

/// Trapezoid integral of a 1 Hz power trace: joules over the run.
double energy_joules(const TimeSeries& power) {
  double joules = 0.0;
  const auto& samples = power.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double dt = to_seconds(samples[i].t - samples[i - 1].t);
    joules += 0.5 * (samples[i].value + samples[i - 1].value) * dt;
  }
  return joules;
}

struct Cell {
  std::string app;
  std::string controller;  ///< registry family name (table label)
  std::string spec;        ///< full registry spec for the trial
  double energy_j = 0.0;
  double energy_frac = 0.0;    ///< vs the app's uncapped reference
  double progress_frac = 0.0;  ///< vs the app's uncapped reference
  bool pareto = false;
};

}  // namespace

int main(int argc, char** argv) {
  using bench::shape_check;
  const auto options = bench::parse_harness_args(argc, argv);
  bench::BenchReport report("policy_shootout", options);
  const Seconds duration = options.short_grid ? 45.0 : 90.0;
  constexpr Seconds kWarmup = 5.0;
  constexpr std::uint64_t kSeed = 11;

  std::cout << "== Controller shootout: energy vs progress per app class ==\n"
            << "Cells: " << num(duration, 0)
            << " s runs, energy = trapezoid(1 Hz power), progress\n"
            << "normalized to the app's uncapped reference (same seed).\n\n";

  const std::vector<std::string> app_names = {"lammps", "stream",
                                              "qmcpack-dmc"};

  // Phase 1: uncapped reference per app — the normalizer for every cell
  // and the rate the closed-loop setpoints are derived from.
  std::vector<exp::ControllerTrial> ref_trials;
  for (const auto& app_name : app_names) {
    exp::ControllerTrial trial;
    trial.app = apps::by_name(app_name);
    trial.make_controller = [] { return policy::make_controller("uncapped"); };
    trial.options.duration = duration;
    trial.options.seed = kSeed;
    ref_trials.push_back(std::move(trial));
  }
  const auto refs =
      exp::sweep_controller_runs(ref_trials, bench::sweep_options(options));
  report.record_sweep(refs);

  std::vector<double> ref_energy(app_names.size(), 0.0);
  std::vector<double> ref_progress(app_names.size(), 0.0);
  std::vector<double> ref_rate(app_names.size(), 0.0);
  for (std::size_t a = 0; a < app_names.size(); ++a) {
    const auto& traces = refs.at(a);
    ref_energy[a] = energy_joules(traces.power);
    ref_progress[a] = traces.total_progress;
    ref_rate[a] = traces.mean_rate(kWarmup, duration);
  }

  // Phase 2: the controller matrix.  Setpoint-chasing controllers aim at
  // 80 % of the app's uncapped rate.
  const std::vector<std::string> families = {"constant", "step", "target",
                                             "pi",       "fft",  "mpc"};
  std::vector<exp::ControllerTrial> trials;
  std::vector<Cell> cells;
  for (std::size_t a = 0; a < app_names.size(); ++a) {
    const std::string setpoint = num(0.8 * ref_rate[a], 3);
    for (const auto& family : families) {
      std::string spec;
      if (family == "constant") {
        spec = "constant:cap=95,delay=5";
      } else if (family == "step") {
        spec = "step:low=70,high=150,high_s=12,low_s=12";
      } else if (family == "target") {
        spec = "target:setpoint=" + setpoint;
      } else if (family == "pi") {
        spec = "pi:setpoint=" + setpoint;
      } else if (family == "fft") {
        spec = "fft:window=32,fallback=95";
      } else {
        spec = "mpc:target=0.8";
      }
      exp::ControllerTrial trial;
      trial.app = apps::by_name(app_names[a]);
      trial.make_controller = [spec] { return policy::make_controller(spec); };
      trial.options.duration = duration;
      trial.options.seed = kSeed;
      trials.push_back(std::move(trial));

      Cell cell;
      cell.app = app_names[a];
      cell.controller = family;
      cell.spec = spec;
      cells.push_back(std::move(cell));
    }
  }
  const auto runs =
      exp::sweep_controller_runs(trials, bench::sweep_options(options));
  report.record_sweep(runs);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::size_t a = i / families.size();
    const auto& traces = runs.at(i);
    cells[i].energy_j = energy_joules(traces.power);
    cells[i].energy_frac =
        ref_energy[a] > 0.0 ? cells[i].energy_j / ref_energy[a] : 0.0;
    cells[i].progress_frac = ref_progress[a] > 0.0
                                 ? traces.total_progress / ref_progress[a]
                                 : 0.0;
  }

  // Pareto front per app: a cell survives unless another cell of the
  // same app uses no more energy AND makes no less progress (one strict).
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::size_t a = i / families.size();
    bool dominated = false;
    for (std::size_t j = a * families.size();
         j < (a + 1) * families.size() && !dominated; ++j) {
      if (j == i) {
        continue;
      }
      const bool no_worse = cells[j].energy_frac <= cells[i].energy_frac &&
                            cells[j].progress_frac >= cells[i].progress_frac;
      const bool strictly =
          cells[j].energy_frac < cells[i].energy_frac ||
          cells[j].progress_frac > cells[i].progress_frac;
      dominated = no_worse && strictly;
    }
    cells[i].pareto = !dominated;
  }

  // Per-app Pareto tables (stdout) and metrics.
  std::ostringstream markdown;
  markdown << "## Controller shootout (energy vs progress)\n\n";
  for (std::size_t a = 0; a < app_names.size(); ++a) {
    std::cout << "-- " << app_names[a]
              << " (uncapped: " << num(ref_energy[a] / 1000.0, 1) << " kJ, "
              << num(ref_rate[a], 1) << "/s) --\n";
    TablePrinter table(
        {"controller", "energy kJ", "energy frac", "progress frac",
         "pareto"});
    markdown << "### " << app_names[a]
             << "\n\n| controller | energy kJ | energy frac | progress frac "
             << "| pareto |\n|---|---:|---:|---:|---|\n";
    unsigned pareto_count = 0;
    for (std::size_t k = 0; k < families.size(); ++k) {
      const Cell& cell = cells[a * families.size() + k];
      pareto_count += cell.pareto ? 1 : 0;
      table.add_row({cell.controller, num(cell.energy_j / 1000.0, 1),
                     num(cell.energy_frac, 3), num(cell.progress_frac, 3),
                     cell.pareto ? "*" : ""});
      markdown << "| " << cell.controller << " | "
               << num(cell.energy_j / 1000.0, 1) << " | "
               << num(cell.energy_frac, 3) << " | "
               << num(cell.progress_frac, 3) << " | "
               << (cell.pareto ? "yes" : "") << " |\n";
      report.metric(cell.app + "." + cell.controller + ".energy_frac",
                    cell.energy_frac);
      report.metric(cell.app + "." + cell.controller + ".progress_frac",
                    cell.progress_frac);
    }
    table.print(std::cout);
    std::cout << "\n";
    markdown << "\n";
    report.metric(app_names[a] + ".pareto_count",
                  static_cast<double>(pareto_count));
  }

  // GITHUB_STEP_SUMMARY gets the same tables as markdown so the Pareto
  // front is readable from the Actions run page.
  if (const char* summary = std::getenv("GITHUB_STEP_SUMMARY")) {
    std::ofstream out(summary, std::ios::app);
    if (out) {
      out << markdown.str();
    }
  }

  const auto cell_at = [&](std::size_t a, const std::string& family) -> const
      Cell& {
        for (std::size_t k = 0; k < families.size(); ++k) {
          if (families[k] == family) {
            return cells[a * families.size() + k];
          }
        }
        throw std::logic_error("unknown family " + family);
      };

  // Gated headline metrics: wide absolute bands that hold for both the
  // short and full grids — they assert the physics, not exact values.
  // check_bench.py enforces the committed baseline's copies of these.
  for (std::size_t a = 0; a < app_names.size(); ++a) {
    const std::string& app = app_names[a];
    report.gate(app + ".constant.energy_frac_gate",
                cell_at(a, "constant").energy_frac, 0.30, 0.95);
    report.gate(app + ".pi.progress_frac_gate",
                cell_at(a, "pi").progress_frac, 0.35, 1.05);
    report.gate(app + ".mpc.progress_frac_gate",
                cell_at(a, "mpc").progress_frac, 0.35, 1.05);
  }

  std::cout << "Shape checks:\n";
  // The paper's core claim: a memory-bound app loses far less progress
  // under the same constant cap than a compute-bound one.
  const double stream_hit = cell_at(1, "constant").progress_frac;
  const double lammps_hit = cell_at(0, "constant").progress_frac;
  shape_check("memory-bound keeps more progress under a 95 W cap than "
                  "compute-bound (stream " +
                  num(stream_hit, 3) + " > lammps " + num(lammps_hit, 3) +
                  ")",
              stream_hit > lammps_hit);
  // Every capping controller must save energy vs uncapped.
  bool all_save = true;
  for (const Cell& cell : cells) {
    if (cell.controller != "fft") {  // fft may run uncapped when aperiodic
      all_save &= cell.energy_frac < 1.0;
    }
  }
  shape_check("every capping controller uses less energy than uncapped",
              all_save);
  // Each app's Pareto front is non-trivial: at least one cell survives.
  bool fronts_ok = true;
  for (std::size_t a = 0; a < app_names.size(); ++a) {
    unsigned count = 0;
    for (std::size_t k = 0; k < families.size(); ++k) {
      count += cells[a * families.size() + k].pareto ? 1 : 0;
    }
    fronts_ok &= count >= 1 && count <= families.size();
  }
  shape_check("every app has a non-empty Pareto front", fronts_ok);

  return report.finish();
}
