// Ablation (paper Section V-C observation): "the online performance of
// the application follows the power capping function being applied ...
// regardless of the application being studied or the power capping
// function being applied."
//
// Quantifies that claim: cross-correlation between the applied-cap signal
// and the progress-rate signal, across every (app, scheme) pair and at
// lags 0-2 s, reported as a matrix.  The (app x scheme) run grid goes
// through exp::sweep_controller_runs — each trial builds a fresh
// controller from its registry spec so nothing is shared between trials.
#include <iostream>
#include <memory>
#include <vector>

#include "exp/measure.hpp"
#include "exp/sweep.hpp"
#include "harness.hpp"
#include "policy/controller.hpp"
#include "shape_check.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

const char* scheme_spec(const std::string& name) {
  if (name == "linear") {
    return "linear:from=150,floor=60,rate=2,delay=8";
  }
  if (name == "step") {
    return "step:low=70,high_s=12,low_s=12";
  }
  return "jagged:from=150,floor=60,period=16";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace procap;
  using bench::shape_check;
  const auto options = bench::parse_harness_args(argc, argv);
  bench::BenchReport report("abl_cap_tracking", options);
  const Seconds duration = options.short_grid ? 40.0 : 80.0;
  std::cout << "== Ablation: does progress track the cap? ==\n"
            << "Pearson correlation of (cap, progress) 1 Hz series, best\n"
            << "over lags 0-2 s; " << num(duration, 0) << " s runs.\n\n";

  const std::vector<std::string> app_names = {
      "lammps", "stream", "amg", "qmcpack-dmc", "openmc-active"};
  const std::vector<std::string> schemes = {"linear", "step", "jagged"};

  // Declarative (app x scheme) grid, app-major to match the output table.
  std::vector<exp::ControllerTrial> trials;
  for (const auto& app_name : app_names) {
    for (const auto& scheme : schemes) {
      exp::ControllerTrial trial;
      trial.app = apps::by_name(app_name);
      const std::string spec = scheme_spec(scheme);
      trial.make_controller = [spec] { return policy::make_controller(spec); };
      trial.options.duration = duration;
      trial.options.seed = 5;
      trials.push_back(std::move(trial));
    }
  }
  const auto runs =
      exp::sweep_controller_runs(trials, bench::sweep_options(options));
  report.record_sweep(runs);

  TablePrinter table({"app", "linear", "step", "jagged"});
  bool all_track = true;
  double corr_min = 1.0;
  for (std::size_t a = 0; a < app_names.size(); ++a) {
    std::vector<std::string> row{app_names[a]};
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const auto& traces = runs.at(a * schemes.size() + s);
      // 5-s smoothed progress rate, as in the Fig. 3 harness: slow
      // reporters (one batch per second) quantize 1-s windows.
      std::vector<double> caps;
      std::vector<double> rates;
      for (std::size_t i = 2; i < traces.cap.size(); ++i) {
        const Nanos t = traces.cap[i].t;
        caps.push_back(traces.cap[i].value == 0.0 ? 165.0
                                                  : traces.cap[i].value);
        const Nanos lo =
            t >= 2 * kNanosPerSecond ? t - 2 * kNanosPerSecond : Nanos{0};
        rates.push_back(traces.progress.mean_in(lo, t + 3 * kNanosPerSecond));
      }
      double best = -1.0;
      for (std::size_t lag = 0; lag <= 2; ++lag) {
        best = std::max(best, cross_correlation(caps, rates, lag));
      }
      row.push_back(num(best, 2));
      corr_min = std::min(corr_min, best);
      // Memory-bound apps track weakly in mild-cap regions; the paper's
      // claim is qualitative, so require a moderate positive correlation.
      all_track &= best > 0.45;
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  report.metric("corr_min", corr_min);

  std::cout << "\nShape checks:\n";
  shape_check("progress tracks the cap (corr > 0.45) for every app x scheme",
              all_track);
  return report.finish();
}
