// Ablation (paper Section V-C observation): "the online performance of
// the application follows the power capping function being applied ...
// regardless of the application being studied or the power capping
// function being applied."
//
// Quantifies that claim: cross-correlation between the applied-cap signal
// and the progress-rate signal, across every (app, scheme) pair and at
// lags 0-2 s, reported as a matrix.
#include <iostream>
#include <memory>
#include <vector>

#include "exp/measure.hpp"
#include "policy/schemes.hpp"
#include "shape_check.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

std::unique_ptr<procap::policy::CapSchedule> make_scheme(
    const std::string& name) {
  using namespace procap::policy;
  if (name == "linear") {
    return std::make_unique<LinearDecreasingCap>(150.0, 60.0, 2.0, 8.0);
  }
  if (name == "step") {
    return std::make_unique<StepCap>(std::nullopt, 70.0, 12.0, 12.0);
  }
  return std::make_unique<JaggedCap>(150.0, 60.0, 16.0);
}

}  // namespace

int main() {
  using namespace procap;
  using bench::shape_check;
  std::cout << "== Ablation: does progress track the cap? ==\n"
            << "Pearson correlation of (cap, progress) 1 Hz series, best\n"
            << "over lags 0-2 s; 80 s runs.\n\n";

  const std::vector<std::string> app_names = {
      "lammps", "stream", "amg", "qmcpack-dmc", "openmc-active"};
  const std::vector<std::string> schemes = {"linear", "step", "jagged"};

  TablePrinter table({"app", "linear", "step", "jagged"});
  bool all_track = true;
  for (const auto& app_name : app_names) {
    std::vector<std::string> row{app_name};
    for (const auto& scheme : schemes) {
      exp::RunOptions opt;
      opt.duration = 80.0;
      opt.seed = 5;
      const auto traces = exp::run_under_schedule(apps::by_name(app_name),
                                                  make_scheme(scheme), opt);
      // 5-s smoothed progress rate, as in the Fig. 3 harness: slow
      // reporters (one batch per second) quantize 1-s windows.
      std::vector<double> caps;
      std::vector<double> rates;
      for (std::size_t i = 2; i < traces.cap.size(); ++i) {
        const Nanos t = traces.cap[i].t;
        caps.push_back(traces.cap[i].value == 0.0 ? 165.0
                                                  : traces.cap[i].value);
        const Nanos lo =
            t >= 2 * kNanosPerSecond ? t - 2 * kNanosPerSecond : Nanos{0};
        rates.push_back(traces.progress.mean_in(lo, t + 3 * kNanosPerSecond));
      }
      double best = -1.0;
      for (std::size_t lag = 0; lag <= 2; ++lag) {
        best = std::max(best, cross_correlation(caps, rates, lag));
      }
      row.push_back(num(best, 2));
      // Memory-bound apps track weakly in mild-cap regions; the paper's
      // claim is qualitative, so require a moderate positive correlation.
      all_track &= best > 0.45;
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n";
  shape_check("progress tracks the cap (corr > 0.45) for every app x scheme",
              all_track);
  return bench::shape_summary();
}
