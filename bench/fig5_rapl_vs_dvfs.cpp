// Figure 5 reproduction: STREAM — RAPL vs DVFS as power-limiting
// techniques.
//
// Two sweeps over the memory-bound STREAM workload:
//   * DVFS: pin each P-state, measure (package power, progress rate);
//   * RAPL: apply each package cap, measure the same.
// The paper's finding: "RAPL is not the best technique to implement power
// capping for STREAM: DVFS performs better in the range that it is
// applicable in" — and below the DVFS floor, RAPL's duty-cycle fallback
// collapses progress.
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "exp/measure.hpp"
#include "policy/schedule_shapes.hpp"
#include "shape_check.hpp"
#include "util/table.hpp"

namespace {

struct PowerRate {
  double power = 0.0;
  double rate = 0.0;
};

}  // namespace

int main() {
  using namespace procap;
  using bench::shape_check;
  std::cout << "== Figure 5: STREAM, RAPL vs DVFS power limiting ==\n\n";

  const auto app = apps::stream();

  // Uncapped reference.
  exp::RunOptions ref_opt;
  ref_opt.duration = 16.0;
  const auto ref = exp::run_under_schedule(
      app, std::make_unique<policy::UncappedSchedule>(), ref_opt);
  const double r_max = ref.mean_rate(4.0, 16.0);

  // DVFS sweep.
  std::vector<PowerRate> dvfs;
  for (double f_mhz = 1200.0; f_mhz <= 3700.0 + 1e-9; f_mhz += 250.0) {
    exp::RunOptions opt;
    opt.duration = 16.0;
    opt.pinned_frequency = mhz(f_mhz);
    const auto traces = exp::run_under_schedule(
        app, std::make_unique<policy::UncappedSchedule>(), opt);
    dvfs.push_back({traces.mean_power(4.0, 16.0), traces.mean_rate(4.0, 16.0)});
  }

  // RAPL sweep.
  std::vector<PowerRate> rapl;
  for (Watts cap = 30.0; cap <= 160.0 + 1e-9; cap += 10.0) {
    const auto impact = exp::measure_cap_impact(app, cap, 1);
    rapl.push_back({impact.power_capped, impact.rate_capped});
  }

  TablePrinter table({"technique", "power_W", "rate_norm"});
  for (const auto& pt : dvfs) {
    table.add_row({"dvfs", num(pt.power, 1), num(pt.rate / r_max, 3)});
  }
  for (const auto& pt : rapl) {
    table.add_row({"rapl", num(pt.power, 1), num(pt.rate / r_max, 3)});
  }
  table.print(std::cout);

  // For each RAPL point inside the DVFS power range, interpolate the DVFS
  // rate at the same power and compare.
  auto dvfs_rate_at = [&](double power) {
    for (std::size_t i = 1; i < dvfs.size(); ++i) {
      if (power <= dvfs[i].power && power >= dvfs[i - 1].power) {
        const double t =
            (power - dvfs[i - 1].power) / (dvfs[i].power - dvfs[i - 1].power);
        return dvfs[i - 1].rate + t * (dvfs[i].rate - dvfs[i - 1].rate);
      }
    }
    return -1.0;  // outside the DVFS-reachable range
  };

  int comparable = 0;
  int dvfs_wins = 0;
  for (const auto& pt : rapl) {
    const double d = dvfs_rate_at(pt.power);
    if (d >= 0.0) {
      ++comparable;
      if (d >= pt.rate - 0.01 * r_max) {
        ++dvfs_wins;
      }
    }
  }
  const double dvfs_floor = dvfs.front().power;
  double rapl_deep_rate = 1.0;
  for (const auto& pt : rapl) {
    if (pt.power < dvfs_floor - 5.0) {
      rapl_deep_rate = std::min(rapl_deep_rate, pt.rate / r_max);
    }
  }

  std::cout << "\nDVFS floor power: " << num(dvfs_floor, 1)
            << " W; RAPL deepest normalized rate below the floor: "
            << num(rapl_deep_rate, 3) << "\n\nShape checks:\n";
  shape_check("sweeps overlap over a comparable power range (>= 4 points)",
              comparable >= 4);
  shape_check("DVFS matches or beats RAPL at every comparable power level",
              comparable > 0 && dvfs_wins == comparable);
  shape_check("DVFS loses little progress across its whole range "
              "(worst >= 55% of uncapped; beta = 0.37)",
              dvfs.front().rate / r_max > 0.55);
  shape_check("RAPL reaches below the DVFS floor only by collapsing "
              "progress (duty cycling)",
              rapl_deep_rate < 0.45);
  return bench::shape_summary();
}
