// Figure 1 reproduction: characterizing online performance.
//
// Left panel:   LAMMPS — consistent rate (~800k atom-steps/s).
// Center panel: AMG — fluctuating rate (~2.5-3 GMRES iterations/s) that
//               needs averaging.
// Right panel:  QMCPACK performance-NiO — three phases (VMC1/VMC2/DMC)
//               computing blocks at clearly distinguishable rates.
#include <cmath>
#include <iostream>
#include <memory>

#include "exp/measure.hpp"
#include "policy/schedule_shapes.hpp"
#include "progress/analysis.hpp"
#include "shape_check.hpp"
#include "util/table.hpp"

namespace {

void print_series(const procap::TimeSeries& s, const char* name,
                  std::size_t stride = 1) {
  std::cout << "t_seconds," << name << "\n";
  for (std::size_t i = 0; i < s.size(); i += stride) {
    std::cout << procap::to_seconds(s[i].t) << "," << s[i].value << "\n";
  }
}

}  // namespace

int main() {
  using namespace procap;
  using bench::shape_check;
  std::cout << "== Figure 1: characterizing online performance ==\n\n";

  // ---- LAMMPS: consistent --------------------------------------------
  {
    exp::RunOptions opt;
    opt.duration = 30.0;
    auto traces = exp::run_under_schedule(
        apps::lammps(), std::make_unique<policy::UncappedSchedule>(), opt);
    const auto report = progress::analyze_consistency(traces.progress);
    std::cout << "-- LAMMPS (atom-steps/s), 30 s, uncapped (turbo) --\n";
    print_series(traces.progress, "lammps_rate", 2);
    std::cout << "mean=" << num(report.mean_rate, 0)
              << " cv=" << num(report.cv, 4) << "\n\n";
    shape_check("LAMMPS online performance is consistent (cv < 3%)",
                report.consistent && report.cv < 0.03);
    shape_check("LAMMPS rate ~ 896k atom-steps/s "
                "(40k atoms x 22.4 steps/s at turbo)",
                std::abs(report.mean_rate - 896000.0) < 55000.0);
  }

  // ---- AMG: fluctuates, needs averaging -------------------------------
  {
    exp::RunOptions opt;
    opt.duration = 60.0;
    opt.seed = 3;
    auto traces = exp::run_under_schedule(
        apps::amg(), std::make_unique<policy::UncappedSchedule>(), opt);
    const auto report =
        progress::analyze_consistency(traces.progress, 0.10, 2);
    std::cout << "-- AMG (GMRES iterations/s), 60 s --\n";
    print_series(traces.progress, "amg_rate", 4);
    std::cout << "mean=" << num(report.mean_rate, 2)
              << " min=" << num(report.mean_rate - report.stddev, 2)
              << " max=" << num(report.mean_rate + report.stddev, 2)
              << " cv=" << num(report.cv, 3) << "\n\n";
    shape_check("AMG mean rate ~3 iterations/s",
                std::abs(report.mean_rate - 3.0) < 0.4);
    shape_check("AMG rate fluctuates more than LAMMPS (cv > 5%)",
                report.cv > 0.05);
  }

  // ---- QMCPACK: three distinguishable phases ---------------------------
  {
    exp::RunOptions opt;
    opt.duration = 45.0;  // VMC1 (~10 s) + VMC2 (~10 s) + 25 s of DMC
    auto traces = exp::run_under_schedule(
        apps::qmcpack(), std::make_unique<policy::UncappedSchedule>(), opt);
    const auto segments = progress::detect_phases(traces.progress, 0.15, 3);
    std::cout << "-- QMCPACK performance-NiO (blocks/s), 45 s --\n";
    print_series(traces.progress, "qmcpack_rate", 2);
    std::cout << "detected phases:\n";
    TablePrinter table({"phase", "start_s", "end_s", "blocks/s"});
    for (std::size_t i = 0; i < segments.size(); ++i) {
      table.add_row({std::to_string(i + 1), num(to_seconds(segments[i].start), 1),
                     num(to_seconds(segments[i].end), 1),
                     num(segments[i].mean_rate, 1)});
    }
    table.print(std::cout);
    std::cout << "\n";
    shape_check("QMCPACK shows exactly three phases", segments.size() == 3);
    if (segments.size() == 3) {
      shape_check("phase rates are distinct and descending "
                  "(VMC1 > VMC2 > DMC)",
                  segments[0].mean_rate > segments[1].mean_rate * 1.1 &&
                      segments[1].mean_rate > segments[2].mean_rate * 1.1);
      shape_check("DMC computes ~17.6 blocks/s (16 at nominal + turbo)",
                  std::abs(segments[2].mean_rate - 17.6) < 1.5);
    }
  }

  return bench::shape_summary();
}
