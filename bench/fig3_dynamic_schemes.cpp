// Figure 3 reproduction: impact of dynamic power-capping schemes on
// progress.
//
// Three schemes (linearly decreasing, step function, jagged edge) applied
// to LAMMPS, QMCPACK (DMC) and OpenMC (active).  The paper's observation:
// "the online performance of the application follows the power capping
// function being applied", for every app and every scheme.
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "exp/measure.hpp"
#include "policy/controller.hpp"
#include "shape_check.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

// Registry specs for the paper's three dynamic shapes (linear: uncapped
// 10 s, then 150 W decreasing 2 W/s to a 60 W floor).
const char* scheme_spec(const std::string& name) {
  if (name == "linear") {
    return "linear:from=150,floor=60,rate=2,delay=10";
  }
  if (name == "step") {
    return "step:low=70,high_s=15,low_s=15";
  }
  return "jagged:from=150,floor=60,period=20";
}

}  // namespace

int main() {
  using namespace procap;
  using bench::shape_check;
  std::cout << "== Figure 3: impact of dynamic power capping on progress ==\n"
            << "Rows: per-second (cap W, progress rate) for each app and\n"
            << "scheme; progress normalized to the uncapped rate.\n";

  const std::vector<std::string> apps_under_test = {"lammps", "qmcpack-dmc",
                                                    "openmc-active"};
  const std::vector<std::string> schemes = {"linear", "step", "jagged"};

  for (const auto& app_name : apps_under_test) {
    // Uncapped reference rate.
    exp::RunOptions ref_opt;
    ref_opt.duration = 20.0;
    const auto ref = exp::run_under_controller(
        apps::by_name(app_name), policy::make_controller("uncapped"),
        ref_opt);
    const double r_max = ref.mean_rate(4.0, 20.0);

    for (const auto& scheme : schemes) {
      exp::RunOptions opt;
      opt.duration = 90.0;
      opt.seed = 7;
      const auto traces = exp::run_under_controller(
          apps::by_name(app_name),
          policy::make_controller(scheme_spec(scheme)), opt);

      std::cout << "\n-- " << app_name << " / " << scheme
                << " (r_uncapped=" << num(r_max, 1) << "/s) --\n";
      std::cout << "t_seconds,cap_W,rate_normalized\n";
      for (std::size_t i = 0; i < traces.cap.size(); i += 3) {
        const Nanos t = traces.cap[i].t;
        std::cout << to_seconds(t) << "," << traces.cap[i].value << ","
                  << num(traces.progress.mean_in(t, t + 3 * kNanosPerSecond) /
                             r_max,
                         3)
                  << "\n";
      }

      // Progress should track the cap: correlate the cap series against a
      // 5-s smoothed progress rate (slow reporters like OpenMC quantize
      // 1-s windows to whole batches; the cap changes over >= 12 s, so
      // smoothing does not hide the effect).  Caps are recorded as 0
      // while uncapped; substitute the uncapped power ceiling.
      std::vector<double> cap_values;
      std::vector<double> rate_values;
      for (std::size_t i = 2; i < traces.cap.size(); ++i) {
        const Nanos t = traces.cap[i].t;
        cap_values.push_back(traces.cap[i].value == 0.0 ? 160.0
                                                        : traces.cap[i].value);
        const Nanos lo = t >= 2 * kNanosPerSecond ? t - 2 * kNanosPerSecond
                                                  : Nanos{0};
        rate_values.push_back(
            traces.progress.mean_in(lo, t + 3 * kNanosPerSecond));
      }
      const double corr = pearson(cap_values, rate_values);
      shape_check(app_name + " progress follows the " + scheme +
                      " cap (corr > 0.55), corr=" + num(corr, 2),
                  corr > 0.55);
    }
  }
  return bench::shape_summary();
}
