// Scrape-load benchmark: the telemetry plane under production scrape
// pressure.  N concurrent keep-alive scrapers (bench/obs_load defaults
// to 32, the acceptance floor) hammer an event-loop HttpServer exposing
// M registered instruments (default 200) through /metrics and
// /timeseries.json, and the bench reports end-to-end scrape latency
// (p50/p99 through an obs::Sketch) and sustained requests/s.
//
// This is the SLO gate for the server rewrite: the committed baseline
// (bench/baselines/BENCH_obs_load.json) carries both the throughput
// floor (trials/s, gated by tools/check_bench.py like every bench) and
// the latency ceiling — p99 over --slo-ms fails the bench outright,
// even on the short grid, because a scrape plane that stalls its
// scrapers is broken at any grid size.
//
//   obs_load [--scrapers N] [--instruments M] [--seconds S]
//            [--slo-ms MS] [--threads N] [--bench-json PATH] [--short]
//
// --threads is accepted for CI-harness compatibility and treated as
// --scrapers; scrape concurrency is the bench's real axis.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/sketch.hpp"
#include "obs/timeseries.hpp"
#include "util/units.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  unsigned scrapers = 32;
  unsigned instruments = 200;
  double seconds = 3.0;
  double slo_ms = 250.0;  // p99 scrape-latency ceiling
  std::string bench_json;
  bool short_grid = false;
};

void usage(const char* argv0) {
  std::cout << "usage: " << argv0
            << " [--scrapers N] [--instruments M] [--seconds S]"
               " [--slo-ms MS] [--threads N] [--bench-json PATH]"
               " [--short]\n";
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scrapers" || arg == "--threads") {
      opt.scrapers = static_cast<unsigned>(std::atol(value("N").c_str()));
    } else if (arg == "--instruments") {
      opt.instruments = static_cast<unsigned>(std::atol(value("M").c_str()));
    } else if (arg == "--seconds") {
      opt.seconds = std::atof(value("S").c_str());
    } else if (arg == "--slo-ms") {
      opt.slo_ms = std::atof(value("MS").c_str());
    } else if (arg == "--bench-json") {
      opt.bench_json = value("PATH");
    } else if (arg == "--short") {
      opt.short_grid = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::cerr << argv[0] << ": unknown flag " << arg << "\n";
      usage(argv[0]);
      std::exit(2);
    }
  }
  // The acceptance floor: at least 32 keep-alive scrapers against at
  // least 200 instruments.  Smaller asks are rounded up, not honored —
  // a thinner grid would gate nothing.
  opt.scrapers = std::max(opt.scrapers, 32u);
  opt.instruments = std::max(opt.instruments, 200u);
  if (opt.short_grid) {
    opt.seconds = std::min(opt.seconds, 1.5);
  }
  return opt;
}

/// Register `count` mixed instruments with plausible values, so the
/// exposition the scrapers pull has production weight.
void populate_registry(procap::obs::Registry& registry, unsigned count) {
  for (unsigned i = 0; i < count; ++i) {
    const std::string labels = "app=\"load\",idx=\"" + std::to_string(i) +
                               "\"";
    switch (i % 4) {
      case 0:
        registry.counter("load.events", labels).inc(i * 17 + 3);
        break;
      case 1:
        registry.gauge("load.level", labels).set(0.5 * i);
        break;
      case 2: {
        auto& hist = registry.histogram(
            "load.wait_seconds", procap::obs::seconds_buckets(), labels);
        for (unsigned k = 0; k < 8; ++k) {
          hist.observe(1e-4 * (i + 1) * (k + 1));
        }
        break;
      }
      default: {
        auto& sketch = registry.sketch("load.size_bytes", labels);
        for (unsigned k = 0; k < 8; ++k) {
          sketch.observe(64.0 * (i + 1) + 7.0 * k);
        }
        break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace procap;
  const Options opt = parse(argc, argv);

  obs::Registry& registry = obs::Registry::global();
  populate_registry(registry, opt.instruments);
  obs::TimeSeriesStore ts_store(registry);
  ts_store.set_meta("app", "obs_load");
  for (int round = 0; round < 32; ++round) {
    ts_store.sample(round * kNanosPerSecond);
  }

  obs::HttpServerOptions server_options;
  server_options.max_connections = opt.scrapers * 2 + 16;
  obs::HttpServer server(server_options);
  server.handle("/metrics", [&registry](const std::string&) {
    std::ostringstream os;
    registry.write_prometheus(os);
    return obs::HttpResponse{200, "text/plain; version=0.0.4", os.str()};
  });
  server.handle("/timeseries.json", [&ts_store](const std::string&) {
    std::ostringstream os;
    ts_store.write_json(os);
    return obs::HttpResponse{200, "application/json", os.str()};
  });
  if (!server.start()) {
    std::cerr << "obs_load: cannot start server\n";
    return 1;
  }

  std::cout << "== Telemetry scrape load: " << opt.scrapers
            << " keep-alive scrapers x " << opt.instruments
            << " instruments for " << opt.seconds << " s ==\n";

  // Latency sketch shared across scrapers (observe() is lock-free);
  // spans 1 us .. 100 s with 1% relative error.
  obs::Sketch latency(0.01, 1e-6, 100.0);
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<bool> stop{false};

  const auto t0 = Clock::now();
  std::vector<std::thread> scrapers;
  scrapers.reserve(opt.scrapers);
  for (unsigned s = 0; s < opt.scrapers; ++s) {
    scrapers.emplace_back([&, s] {
      obs::HttpClient client("127.0.0.1", server.port());
      unsigned i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Production scrape mix: mostly exposition pulls, every fourth
        // request the heavier JSON document.
        const std::string& path = (++i % 4 == 0)
                                      ? std::string("/timeseries.json")
                                      : std::string("/metrics");
        const auto start = Clock::now();
        const auto result = client.get(path);
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (result && result->status == 200 && !result->body.empty()) {
          latency.observe(elapsed);
          requests.fetch_add(1, std::memory_order_relaxed);
          bytes.fetch_add(result->body.size(), std::memory_order_relaxed);
        } else {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      (void)s;
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(opt.seconds));
  stop.store(true);
  for (std::thread& t : scrapers) {
    t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  server.stop();

  const std::uint64_t total = requests.load();
  const std::uint64_t failed = failures.load();
  const double rps = wall_s > 0.0 ? static_cast<double>(total) / wall_s : 0.0;
  const double p50_ms = latency.quantile(0.50) * 1e3;
  const double p99_ms = latency.quantile(0.99) * 1e3;
  const double mib_per_s =
      wall_s > 0.0 ? static_cast<double>(bytes.load()) / wall_s / 1048576.0
                   : 0.0;

  std::cout << "requests: " << total << " ok, " << failed << " failed ("
            << static_cast<std::uint64_t>(rps) << " req/s, " << mib_per_s
            << " MiB/s)\n"
            << "scrape latency: p50 " << p50_ms << " ms, p99 " << p99_ms
            << " ms (SLO " << opt.slo_ms << " ms)\n"
            << "server: " << server.requests_served() << " served, "
            << server.connections_accepted() << " connections, "
            << server.connections_rejected() << " rejected, "
            << server.idle_evictions() << " idle evictions\n";

  // The SLO assertion — enforced on every grid.
  bool ok = true;
  if (failed > 0) {
    std::cout << "FAIL: " << failed << " scrapes failed\n";
    ok = false;
  }
  if (total == 0) {
    std::cout << "FAIL: no successful scrapes\n";
    ok = false;
  }
  if (p99_ms > opt.slo_ms) {
    std::cout << "FAIL: p99 " << p99_ms << " ms over SLO " << opt.slo_ms
              << " ms\n";
    ok = false;
  }

  std::cout << "bench: " << total << " trials in " << wall_s << " s ("
            << rps << " trials/s, " << opt.scrapers << " threads)\n";

  if (!opt.bench_json.empty()) {
    std::ofstream out(opt.bench_json);
    if (!out) {
      std::cerr << "obs_load: cannot write " << opt.bench_json << "\n";
      return 1;
    }
    out << "{\n"
        << "  \"bench\": \"obs_load\",\n"
        << "  \"threads\": " << opt.scrapers << ",\n"
        << "  \"trials\": " << total << ",\n"
        << "  \"wall_s\": " << wall_s << ",\n"
        << "  \"trials_per_s\": " << rps << ",\n"
        << "  \"short_grid\": " << (opt.short_grid ? "true" : "false")
        << ",\n"
        << "  \"shape_failures\": " << (ok ? 0 : 1) << ",\n"
        << "  \"trial_failures\": " << failed << ",\n"
        << "  \"metrics\": {\n"
        << "    \"p50_ms\": " << p50_ms << ",\n"
        << "    \"p99_ms\": " << p99_ms << ",\n"
        << "    \"slo_p99_ms\": " << opt.slo_ms << ",\n"
        << "    \"requests_per_s\": " << rps << ",\n"
        << "    \"mib_per_s\": " << mib_per_s << ",\n"
        << "    \"scrapers\": " << opt.scrapers << ",\n"
        << "    \"instruments\": " << opt.instruments << "\n"
        << "  }\n}\n";
  }
  return ok ? 0 : 1;
}
