// Substrate microbenchmarks (google-benchmark).
//
// These measure the cost of the pieces a production deployment would run
// on the node: progress publish/deliver on the message bus, monitor
// polling, RAPL register codecs, model evaluation, and the simulation
// engine's stepping rate (which bounds how much simulated time the
// experiment harness can chew through per wall second).
#include <benchmark/benchmark.h>

#include <memory>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/rig.hpp"
#include "model/fit.hpp"
#include "msgbus/bus.hpp"
#include "progress/monitor.hpp"
#include "progress/reporter.hpp"
#include "apps/specfile.hpp"
#include "minithread/minithread.hpp"
#include "progress/windower.hpp"
#include "rapl/codec.hpp"

#include <sstream>

namespace {

using namespace procap;

void BM_MsgbusPublishDeliver(benchmark::State& state) {
  ManualTimeSource clock;
  msgbus::Broker broker(clock);
  auto pub = broker.make_pub();
  auto sub = broker.make_sub();
  sub->subscribe("progress/");
  const std::string payload = progress::encode_sample({40000.0, 1});
  for (auto _ : state) {
    pub->publish("progress/app", payload);
    benchmark::DoNotOptimize(sub->try_recv());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MsgbusPublishDeliver);

void BM_MsgbusFanOut8(benchmark::State& state) {
  ManualTimeSource clock;
  msgbus::Broker broker(clock);
  auto pub = broker.make_pub();
  std::vector<std::shared_ptr<msgbus::SubSocket>> subs;
  for (int i = 0; i < 8; ++i) {
    subs.push_back(broker.make_sub());
    subs.back()->subscribe("");
  }
  for (auto _ : state) {
    pub->publish("t", "x");
    for (auto& sub : subs) {
      benchmark::DoNotOptimize(sub->try_recv());
    }
  }
}
BENCHMARK(BM_MsgbusFanOut8);

void BM_ProgressSampleCodec(benchmark::State& state) {
  const progress::ProgressSample sample{123456.789, 2};
  for (auto _ : state) {
    const auto encoded = progress::encode_sample(sample);
    benchmark::DoNotOptimize(progress::decode_sample(encoded));
  }
}
BENCHMARK(BM_ProgressSampleCodec);

void BM_MonitorPoll100Samples(benchmark::State& state) {
  ManualTimeSource clock;
  msgbus::Broker broker(clock);
  progress::Reporter reporter(broker.make_pub(), {"app", "u"});
  progress::Monitor monitor(broker.make_sub(), "app", clock);
  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) {
      clock.advance(usec(500));
      reporter.report(1.0);
    }
    monitor.poll();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_MonitorPoll100Samples);

void BM_RaplLimitCodec(benchmark::State& state) {
  const rapl::RaplUnits units = rapl::RaplUnits::skylake();
  rapl::PkgPowerLimit limit;
  limit.pl1.power = 95.0;
  limit.pl1.enabled = true;
  limit.pl1.time_window = 0.01;
  for (auto _ : state) {
    const auto raw = limit.encode(units);
    benchmark::DoNotOptimize(rapl::PkgPowerLimit::decode(raw, units));
  }
}
BENCHMARK(BM_RaplLimitCodec);

void BM_ModelDeltaProgress(benchmark::State& state) {
  model::ModelParams params;
  params.beta = 0.84;
  params.p_core_max = 120.0;
  params.r_max = 16.0;
  double cap = 30.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::delta_progress(params, cap));
    cap = cap >= 110.0 ? 30.0 : cap + 1.0;
  }
}
BENCHMARK(BM_ModelDeltaProgress);

void BM_FitAlpha(benchmark::State& state) {
  model::ModelParams params;
  params.beta = 0.84;
  params.p_core_max = 120.0;
  params.r_max = 16.0;
  std::vector<model::CapObservation> obs;
  for (Watts cap = 30.0; cap <= 110.0; cap += 10.0) {
    model::ModelParams truth = params;
    truth.alpha = 2.4;
    obs.push_back({cap, model::delta_progress(truth, cap)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::fit_alpha(params, obs));
  }
}
BENCHMARK(BM_FitAlpha);

// Simulated seconds per wall second for a full rig with a running app:
// the throughput that bounds every experiment above.
void BM_SimEngineLammpsSecond(benchmark::State& state) {
  exp::SimRig rig;
  const auto app = apps::lammps();
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 1);
  for (auto _ : state) {
    rig.engine().run_for(kNanosPerSecond);
  }
  state.SetLabel("one simulated second per iteration, 24 cores");
}
BENCHMARK(BM_SimEngineLammpsSecond);

void BM_RaplFirmwareObserve(benchmark::State& state) {
  hw::CpuSpec spec = hw::CpuSpec::skylake24();
  hw::RaplFirmware fw(spec);
  rapl::PkgPowerLimit limit;
  limit.pl1.power = 100.0;
  limit.pl1.enabled = true;
  limit.pl1.time_window = 0.01;
  fw.program(limit);
  double power = 80.0;
  for (auto _ : state) {
    fw.observe(power, msec(1));
    power = power >= 150.0 ? 80.0 : power + 1.0;
  }
}
BENCHMARK(BM_RaplFirmwareObserve);

void BM_MinithreadParallelFor(benchmark::State& state) {
  minithread::ThreadPool pool(4);
  std::vector<double> data(4096, 1.0);
  for (auto _ : state) {
    pool.parallel_for(data.size(), [&](std::size_t i) { data[i] *= 1.0001; });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_MinithreadParallelFor);

void BM_RateWindowerIngest(benchmark::State& state) {
  for (auto _ : state) {
    progress::RateWindower windower(0, kNanosPerSecond);
    for (int i = 0; i < 1000; ++i) {
      windower.add(static_cast<Nanos>(i) * msec(10), 1.0);
    }
    benchmark::DoNotOptimize(windower.windows());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_RateWindowerIngest);

void BM_SpecParse(benchmark::State& state) {
  std::ostringstream os;
  apps::write_spec(os, apps::qmcpack().spec);
  const std::string text = os.str();
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::parse_spec(text));
  }
}
BENCHMARK(BM_SpecParse);

}  // namespace
