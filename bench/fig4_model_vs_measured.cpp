// Figure 4 (a-e) reproduction: measured vs model-predicted change in
// progress under RAPL package caps.
//
// Procedure per application (paper Section VI-2):
//   * characterize: beta, MPO, uncapped power and rate;
//   * for each package cap, apply a step (uncapped -> cap), measure the
//     change in progress; 5 measurements are averaged per cap;
//   * model prediction: Eq. (7) with alpha = 2 and
//     P_corecap = beta * P_cap (Eq. 5), P_coremax = beta * P_uncapped.
//
// The (app x cap x seed) grid runs through exp::sweep_cap_impact — one
// independent SimRig per trial, sharded across --threads workers; the
// per-trial results are bit-identical to the serial loops this harness
// replaced (tests/exp_sweep_test.cpp pins that contract).
//
// The paper's error structure to reproduce:
//   * LAMMPS: good mid-range (<15%), underestimates at stringent caps;
//   * QMCPACK / AMG: model overestimates the impact (positive bias);
//   * STREAM: fails badly at stringent caps, underestimating the impact
//     (RAPL falls back to duty-cycle modulation, which the DVFS-based
//     model cannot see);
//   * OpenMC: close match over a wide range.
#include <cmath>
#include <iostream>
#include <vector>

#include "exp/measure.hpp"
#include "exp/sweep.hpp"
#include "harness.hpp"
#include "model/fit.hpp"
#include "shape_check.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

struct AppSweep {
  const char* name;
  double cap_lo;
  double cap_hi;
  double cap_step;
  // Measurement windows; slow reporters (OpenMC: one batch per second)
  // need longer windows so the batch quantization averages out.
  double uncapped_for = 14.0;
  double capped_for = 24.0;
};

// Sweep ranges chosen around each app's uncapped power (~147-157 W) down
// to the stringent region near the node's static floor (~21 W).
constexpr AppSweep kSweeps[] = {
    {"lammps", 25.0, 135.0, 10.0},
    {"amg", 50.0, 150.0, 10.0},
    {"qmcpack-dmc", 45.0, 130.0, 10.0},
    {"stream", 30.0, 150.0, 10.0},
    {"openmc-active", 45.0, 120.0, 10.0, 24.0, 56.0},
};

constexpr int kSeeds = 5;

}  // namespace

int main(int argc, char** argv) {
  using namespace procap;
  using bench::shape_check;
  const auto options = bench::parse_harness_args(argc, argv);
  bench::BenchReport report("fig4_model_vs_measured", options);
  const auto sweep_opt = bench::sweep_options(options);
  // CI smoke grid: half the caps, 2 seeds; the full run keeps the
  // paper's 5 measurements per cap.
  const double step_scale = options.short_grid ? 2.0 : 1.0;
  const int seeds = options.short_grid ? 2 : kSeeds;

  std::cout << "== Figure 4: measured vs predicted change in progress ==\n"
            << seeds << " measurements per cap; model: Eq. (7), alpha=2,\n"
            << "P_corecap = beta * P_cap.\n";

  // Characterize the suite first — one independent trial per app.
  const auto characterizations = exp::sweep<exp::Characterization>(
      std::size(kSweeps),
      [](std::size_t i) {
        return exp::characterize(apps::by_name(kSweeps[i].name), 1.6e9,
                                 12.0);
      },
      sweep_opt);
  report.record_sweep(characterizations);

  for (std::size_t app_index = 0; app_index < std::size(kSweeps);
       ++app_index) {
    const AppSweep& sweep = kSweeps[app_index];
    const auto& c = characterizations.at(app_index);

    model::ModelParams params;
    params.beta = c.beta;
    params.alpha = 2.0;
    params.p_core_max = c.beta * c.power_uncapped;
    params.r_max = c.rate_uncapped;

    std::cout << "\n-- " << sweep.name << ": beta=" << num(c.beta, 2)
              << " P_uncapped=" << num(c.power_uncapped, 1)
              << " W  r_max=" << num(c.rate_uncapped, 1) << "/s --\n";

    exp::CapImpactGrid grid;
    grid.app = apps::by_name(sweep.name);
    for (Watts cap = sweep.cap_lo; cap <= sweep.cap_hi + 1e-9;
         cap += sweep.cap_step * step_scale) {
      grid.caps.push_back(cap);
    }
    for (int seed = 1; seed <= seeds; ++seed) {
      grid.seeds.push_back(static_cast<std::uint64_t>(seed));
    }
    grid.uncapped_for = sweep.uncapped_for;
    grid.capped_for = sweep.capped_for;
    const auto impacts = exp::sweep_cap_impact(grid, sweep_opt);
    report.record_sweep(impacts);

    TablePrinter table({"P_cap (W)", "P_corecap (W)", "measured dProgress",
                        "+/- stddev", "predicted dProgress", "error %"});
    std::vector<model::CapObservation> observations;
    std::vector<double> errors_mid;   // caps in the upper half of the sweep
    std::vector<double> errors_low;   // stringent caps (lower quarter)
    for (std::size_t cap_index = 0; cap_index < grid.caps.size();
         ++cap_index) {
      const Watts cap = grid.caps[cap_index];
      StreamingStats delta_stats;
      for (std::size_t seed_index = 0; seed_index < grid.seeds.size();
           ++seed_index) {
        delta_stats.add(impacts.at(grid.index(cap_index, seed_index)).delta);
      }
      const double measured = delta_stats.mean();
      const Watts core_cap = model::effective_core_cap(c.beta, cap);
      const double predicted = model::delta_progress(params, core_cap);
      const double err_pct =
          measured != 0.0 ? (predicted - measured) / std::abs(measured) * 100.0
                          : 0.0;
      observations.push_back({core_cap, measured});
      if (cap >= sweep.cap_lo + 0.5 * (sweep.cap_hi - sweep.cap_lo)) {
        if (measured > 0.02 * params.r_max) {
          errors_mid.push_back(err_pct);
        }
      } else if (cap <= sweep.cap_lo + 0.25 * (sweep.cap_hi - sweep.cap_lo)) {
        errors_low.push_back(err_pct);
      }
      table.add_row({num(cap, 0), num(core_cap, 1), num(measured, 2),
                     num(delta_stats.stddev(), 2), num(predicted, 2),
                     num(err_pct, 1)});
    }
    table.print(std::cout);

    const auto summary =
        model::summarize(model::evaluate(params, observations));
    std::cout << "summary: MAPE=" << num(summary.mape, 1)
              << "%  bias=" << num(summary.bias_pct, 1)
              << "%  max|err|=" << num(summary.max_abs_pct, 1) << "%\n";
    report.metric(std::string(sweep.name) + ".mape_pct", summary.mape);
    report.metric(std::string(sweep.name) + ".bias_pct", summary.bias_pct);

    auto mean_of = [](const std::vector<double>& v) {
      double s = 0.0;
      for (const double x : v) s += x;
      return v.empty() ? 0.0 : s / static_cast<double>(v.size());
    };

    const std::string name(sweep.name);
    if (name == "lammps") {
      shape_check("lammps: model captures the general trend (MAPE < 40%)",
                  summary.mape < 40.0);
      shape_check("lammps: model UNDERESTIMATES impact at stringent caps "
                  "(duty cycling region)",
                  mean_of(errors_low) < 0.0);
    } else if (name == "qmcpack-dmc" || name == "amg") {
      shape_check(name + ": model OVERESTIMATES impact in the DVFS region "
                         "(positive mid-range bias)",
                  mean_of(errors_mid) > 0.0);
    } else if (name == "stream") {
      shape_check("stream: model fails at stringent caps, underestimating "
                  "impact by >30%",
                  mean_of(errors_low) < -30.0);
    } else if (name == "openmc-active") {
      // Paper Fig. 4e: errors of 3.8-27.7% across its cap band.  With the
      // turbo substrate, the matching band is the stringent-to-mid caps
      // (up to ~2/3 of uncapped power); the mild-cap rows inherit the
      // turbo-exit overestimation every compute-bound app shows.
      const auto points = model::evaluate(params, observations);
      double abs_sum = 0.0;
      std::size_t n = 0;
      for (std::size_t i = 0; i + 2 < points.size(); ++i) {
        abs_sum += std::abs(points[i].error_pct);
        ++n;
      }
      const double band_mape = n ? abs_sum / static_cast<double>(n) : 0.0;
      shape_check("openmc: model close over the stringent-to-mid band "
                      "(MAPE " + num(band_mape, 1) + "% < 30%)",
                  band_mape < 30.0);
    }
  }
  return report.finish();
}
