// Table VI reproduction: beta and MPO characterization of the suite.
//
// For each application, beta is measured exactly as in the paper
// (Section IV-A): from execution-time ratios at 3300 MHz and 1600 MHz,
// here via the progress rate (rate ~ 1/T).  MPO is PAPI_L3_TCM /
// PAPI_TOT_INS over the 3300 MHz run.
#include <cmath>
#include <iostream>
#include <vector>

#include "exp/measure.hpp"
#include "exp/sweep.hpp"
#include "harness.hpp"
#include "shape_check.hpp"
#include "util/table.hpp"

namespace {

struct PaperRow {
  const char* app;
  const char* label;
  double beta_paper;
  double mpo_paper_e3;  // x 1e-3
};

// Paper Table VI.
constexpr PaperRow kPaper[] = {
    {"qmcpack-dmc", "QMCPACK (DMC)", 0.84, 3.91},
    {"openmc-active", "OpenMC (Active)", 0.93, 0.20},
    {"amg", "AMG", 0.52, 30.1},
    {"lammps", "LAMMPS", 1.00, 0.32},
    {"stream", "STREAM", 0.37, 50.9},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace procap;
  const auto options = bench::parse_harness_args(argc, argv);
  bench::BenchReport report("tbl6_beta_mpo", options);
  std::cout << "== Table VI: beta and MPO metrics for selected applications ==\n"
            << "beta from progress rates at 3300 vs 1600 MHz (Eq. 1); MPO =\n"
            << "PAPI_L3_TCM / PAPI_TOT_INS at 3300 MHz.\n\n";

  // One independent characterization trial per application.
  const auto characterizations = exp::sweep<exp::Characterization>(
      std::size(kPaper),
      [](std::size_t i) {
        return exp::characterize(apps::by_name(kPaper[i].app), 1.6e9, 12.0);
      },
      bench::sweep_options(options));
  report.record_sweep(characterizations);

  TablePrinter table({"Application", "beta (measured)", "beta (paper)",
                      "MPO x1e-3 (measured)", "MPO x1e-3 (paper)"});
  std::vector<double> measured_beta;
  std::vector<double> measured_mpo;
  for (std::size_t i = 0; i < std::size(kPaper); ++i) {
    const PaperRow& row = kPaper[i];
    const auto& c = characterizations.at(i);
    measured_beta.push_back(c.beta);
    measured_mpo.push_back(c.mpo * 1e3);
    report.metric(std::string(row.app) + ".beta", c.beta);
    table.add_row({row.label, num(c.beta, 2), num(row.beta_paper, 2),
                   num(c.mpo * 1e3, 2), num(row.mpo_paper_e3, 2)});
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n";
  using bench::shape_check;
  for (std::size_t i = 0; i < std::size(kPaper); ++i) {
    shape_check(std::string(kPaper[i].label) + ": beta within 0.05 of paper",
                std::abs(measured_beta[i] - kPaper[i].beta_paper) < 0.05);
    shape_check(std::string(kPaper[i].label) + ": MPO within 15% of paper",
                std::abs(measured_mpo[i] - kPaper[i].mpo_paper_e3) <
                    0.15 * kPaper[i].mpo_paper_e3 + 0.05);
  }
  // The paper's qualitative claim: MPO and beta are anti-correlated
  // (high MPO -> memory-bound -> low beta).
  shape_check("MPO ordering is the reverse of beta ordering (STREAM max MPO, "
              "LAMMPS max beta)",
              measured_mpo[4] > measured_mpo[2] &&  // STREAM > AMG
                  measured_mpo[2] > measured_mpo[0] &&  // AMG > QMCPACK
                  measured_beta[3] > measured_beta[0] &&  // LAMMPS > QMCPACK
                  measured_beta[0] > measured_beta[2]);   // QMCPACK > AMG
  return report.finish();
}
