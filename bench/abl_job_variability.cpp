// Extension bench: job-level power distribution under node variability.
//
// The paper's Section II motivates the hierarchy — "inside each job, this
// power budget is then distributed to nodes, according to application
// characteristics and node variability" — and Section VII cites Rountree
// et al.: performance variability between nodes becomes a highlighted
// issue in a power-limited environment.  This bench quantifies both on
// the procap substrate:
//
//   1. variability appears only under a power bound: uncapped, identical
//      progress; capped uniformly, progress spreads with the parts;
//   2. a progress-aware (critical-path) distribution narrows the spread
//      and lifts the job rate relative to the uniform split — which is
//      only possible because progress is monitorable online (the paper's
//      core argument).
#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "apps/suite.hpp"
#include "exp/sweep.hpp"
#include "harness.hpp"
#include "job/cluster.hpp"
#include "job/manager.hpp"
#include "shape_check.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

namespace {

using namespace procap;

struct Outcome {
  std::vector<double> node_rates;  // per-node mean rate, last 40 s
  std::vector<Watts> caps;
  double job_rate = 0.0;
};

Outcome run(job::JobPolicy policy, std::optional<Watts> budget) {
  sim::Engine engine;
  job::ClusterSpec spec;
  spec.nodes = 8;
  spec.variability_cv = 0.12;
  spec.seed = 21;
  job::Cluster cluster(engine, apps::lammps(), spec);
  std::unique_ptr<job::JobPowerManager> manager;
  if (budget) {
    job::JobManagerConfig config;
    config.policy = policy;
    config.spread_deadband = 0.02;
    manager = std::make_unique<job::JobPowerManager>(cluster, engine.time(),
                                                     *budget, config);
    manager->attach(engine);
  }
  engine.run_for(to_nanos(80.0));
  Outcome out;
  for (unsigned i = 0; i < cluster.size(); ++i) {
    out.node_rates.push_back(cluster.node(i).monitor->rates().mean_in(
        to_nanos(40.0), to_nanos(80.0)));
  }
  out.job_rate = *std::min_element(out.node_rates.begin(),
                                   out.node_rates.end());
  out.caps = manager ? manager->caps() : std::vector<Watts>{};
  return out;
}

double spread(const std::vector<double>& v) {
  const double hi = *std::max_element(v.begin(), v.end());
  const double lo = *std::min_element(v.begin(), v.end());
  return (hi - lo) / hi;
}

}  // namespace

int main(int argc, char** argv) {
  using bench::shape_check;
  const auto options = bench::parse_harness_args(argc, argv);
  bench::BenchReport report("abl_job_variability", options);
  std::cout << "== Extension: node variability under a job power budget ==\n"
            << "8 LAMMPS nodes, 12% part-to-part power variability, job\n"
            << "budget 560 W (70 W/node).\n\n";

  // Three independent cluster configurations — a bespoke trial shape, so
  // use the generic sweep directly (each trial owns its engine+cluster).
  struct Config {
    job::JobPolicy policy;
    std::optional<Watts> budget;
  };
  const std::vector<Config> configs = {
      {job::JobPolicy::kUniform, std::nullopt},
      {job::JobPolicy::kUniform, Watts{560.0}},
      {job::JobPolicy::kCriticalPath, Watts{560.0}},
  };
  const auto outcomes = exp::sweep<Outcome>(
      configs.size(),
      [&configs](std::size_t i) {
        return run(configs[i].policy, configs[i].budget);
      },
      bench::sweep_options(options));
  report.record_sweep(outcomes);
  const Outcome& uncapped = outcomes.at(0);
  const Outcome& uniform = outcomes.at(1);
  const Outcome& critical = outcomes.at(2);

  TablePrinter table({"node", "uncapped rate", "uniform@70W rate",
                      "critical-path rate", "critical-path cap W"});
  for (std::size_t i = 0; i < uncapped.node_rates.size(); ++i) {
    table.add_row({std::to_string(i), num(uncapped.node_rates[i], 0),
                   num(uniform.node_rates[i], 0),
                   num(critical.node_rates[i], 0),
                   num(critical.caps[i], 0)});
  }
  table.print(std::cout);
  std::cout << "\nrate spread: uncapped " << num(spread(uncapped.node_rates) * 100, 1)
            << "%, uniform " << num(spread(uniform.node_rates) * 100, 1)
            << "%, critical-path " << num(spread(critical.node_rates) * 100, 1)
            << "%\njob (slowest-node) rate: uniform " << num(uniform.job_rate, 0)
            << ", critical-path " << num(critical.job_rate, 0) << " ("
            << num((critical.job_rate / uniform.job_rate - 1.0) * 100, 1)
            << "% better)\n\nShape checks:\n";

  shape_check("uncapped: variability invisible (spread < 4%)",
              spread(uncapped.node_rates) < 0.04);
  shape_check("uniform cap: variability exposed (spread > 6%)",
              spread(uniform.node_rates) > 0.06);
  shape_check("critical-path narrows the spread by >30%",
              spread(critical.node_rates) < 0.7 * spread(uniform.node_rates));
  shape_check("critical-path lifts the job rate",
              critical.job_rate > uniform.job_rate * 1.005);
  const double cap_total =
      std::accumulate(critical.caps.begin(), critical.caps.end(), 0.0);
  shape_check("budget invariant holds (sum of caps <= 560 W)",
              cap_total <= 560.0 + 1e-6);
  report.metric("uniform_spread_pct", spread(uniform.node_rates) * 100.0);
  report.metric("critical_spread_pct", spread(critical.node_rates) * 100.0);
  report.metric("job_rate_gain_pct",
                (critical.job_rate / uniform.job_rate - 1.0) * 100.0);
  return report.finish();
}
