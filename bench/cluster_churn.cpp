// Cluster-churn benchmark: how fast the cluster power hierarchy turns
// over node state, and how long a redistribution decision takes, while
// the cluster is actively churning (crashes with rejoin, heartbeat
// loss, slow nodes) under every shipped strategy.
//
// Reported metrics:
//   node_steps_per_s     — SimNode::step throughput across the sweep
//                          (the scaling headline: nodes x ticks / wall);
//   redistribute_us_mean — mean wall cost of one strategy decision;
//   redistribute_us_max  — worst observed decision;
//   deaths / rejoins     — churn actually exercised (shape-checked > 0);
//   invariant_violations — must be 0 (shape-checked).
//
// Each trial owns its whole cluster and runs its manager single-threaded;
// the sweep shards trials across the pool, so `--threads` scales the
// bench without nesting pools.  Two trials per (strategy, seed) pair run
// the identical config and must produce identical allocation-trace
// hashes — the determinism contract, enforced even on the short grid.
#include <iostream>
#include <sstream>
#include <vector>

#include "cluster/manager.hpp"
#include "exp/sweep.hpp"
#include "harness.hpp"
#include "shape_check.hpp"
#include "util/table.hpp"

namespace {

struct TrialResult {
  double node_steps = 0.0;
  double redistribute_us_sum = 0.0;
  double redistribute_us_max = 0.0;
  std::size_t redistributions = 0;
  std::uint64_t deaths = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t violations = 0;
  std::uint64_t trace_hash = 0;
};

procap::fault::FaultPlan churn_plan(std::uint64_t seed) {
  std::istringstream text(
      "seed " + std::to_string(seed) + "\n"
      "node 6 14   crash frac 0.10\n"   // 10% die, rejoin at 14 s
      "node 20 inf crash frac 0.05\n"   // 5% die for good
      "node 4 24   hbloss frac 0.05\n"  // telemetry plane flaps
      "node 0 inf  slow frac 0.10 factor 0.6\n"
      "node 10 18  hang id 3\n");
  return procap::fault::FaultPlan::parse(text);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace procap;
  using bench::shape_check;
  const auto options = bench::parse_harness_args(argc, argv);
  bench::BenchReport report("cluster_churn", options);

  const unsigned nodes = options.short_grid ? 128 : 384;
  const unsigned epochs = options.short_grid ? 24 : 40;
  const std::vector<std::uint64_t> seeds =
      options.short_grid ? std::vector<std::uint64_t>{11, 12}
                         : std::vector<std::uint64_t>{11, 12, 13, 14};
  const std::vector<std::string> strategies = {"uniform", "demand",
                                               "progress"};
  constexpr std::size_t kRepeats = 2;  // identical pairs, hash-compared

  std::cout << "== Cluster churn: redistribution under node failure ==\n"
            << nodes << " nodes, " << epochs << " epochs, "
            << strategies.size() << " strategies x " << seeds.size()
            << " seeds x " << kRepeats << " repeats\n\n";

  const std::size_t grid = strategies.size() * seeds.size() * kRepeats;
  const auto swept = exp::sweep<TrialResult>(
      grid,
      [&](std::size_t i) {
        const std::size_t pair = i / kRepeats;
        cluster::ClusterConfig config;
        config.nodes = nodes;
        config.global_budget = 120.0 * nodes;
        config.jobs = nodes / 8;
        config.strategy = strategies[pair / seeds.size()];
        config.seed = seeds[pair % seeds.size()];
        config.threads = 1;  // the sweep already owns the parallelism
        config.plan = churn_plan(config.seed);
        cluster::ClusterPowerManager manager(config);
        manager.run(epochs);

        TrialResult r;
        r.node_steps = static_cast<double>(manager.node_count()) *
                       config.ticks_per_epoch * epochs;
        for (const cluster::EpochRecord& rec : manager.records()) {
          if (!rec.held && rec.redistribute_us > 0.0) {
            r.redistribute_us_sum += rec.redistribute_us;
            r.redistribute_us_max =
                std::max(r.redistribute_us_max, rec.redistribute_us);
            ++r.redistributions;
          }
        }
        r.deaths = manager.deaths();
        r.rejoins = manager.rejoins();
        r.violations = manager.invariant_violations();
        r.trace_hash = manager.trace_hash();
        return r;
      },
      bench::sweep_options(options));
  report.record_sweep(swept);
  if (!swept.ok()) {
    return report.finish();
  }

  double node_steps = 0.0;
  double redis_sum = 0.0;
  double redis_max = 0.0;
  std::size_t redis_n = 0;
  std::uint64_t deaths = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t violations = 0;
  bool deterministic = true;
  TablePrinter table({"strategy", "seed", "deaths", "rejoins", "redis us",
                      "identical"});
  for (std::size_t pair = 0; pair < grid / kRepeats; ++pair) {
    const TrialResult& a = swept.at(pair * kRepeats);
    const TrialResult& b = swept.at(pair * kRepeats + 1);
    const bool identical = a.trace_hash == b.trace_hash;
    deterministic &= identical;
    for (const TrialResult* r : {&a, &b}) {
      node_steps += r->node_steps;
      redis_sum += r->redistribute_us_sum;
      redis_max = std::max(redis_max, r->redistribute_us_max);
      redis_n += r->redistributions;
      deaths += r->deaths;
      rejoins += r->rejoins;
      violations += r->violations;
    }
    table.add_row({strategies[pair / seeds.size()],
                   std::to_string(seeds[pair % seeds.size()]),
                   std::to_string(a.deaths), std::to_string(a.rejoins),
                   num(a.redistributions > 0
                           ? a.redistribute_us_sum /
                                 static_cast<double>(a.redistributions)
                           : 0.0,
                       1),
                   identical ? "yes" : "NO"});
  }
  table.print(std::cout);

  const double node_steps_per_s =
      swept.wall_seconds > 0.0 ? node_steps / swept.wall_seconds : 0.0;
  const double redis_mean =
      redis_n > 0 ? redis_sum / static_cast<double>(redis_n) : 0.0;
  std::cout << "\nnode steps/s: " << num(node_steps_per_s, 0)
            << "  redistribution: mean " << num(redis_mean, 1) << " us, max "
            << num(redis_max, 1) << " us\n";
  report.metric("node_steps_per_s", node_steps_per_s);
  report.metric("redistribute_us_mean", redis_mean);
  report.metric("redistribute_us_max", redis_max);
  report.metric("deaths", static_cast<double>(deaths));
  report.metric("rejoins", static_cast<double>(rejoins));
  report.metric("invariant_violations", static_cast<double>(violations));

  std::cout << "\nShape checks:\n";
  shape_check("churn exercised: nodes died and rejoined",
              deaths > 0 && rejoins > 0);
  shape_check("conservation: no invariant violations", violations == 0);
  shape_check("repeat runs produce identical allocation traces",
              deterministic);
  // Determinism is a correctness property, not a shape: enforce it even
  // on the short grid (finish() relaxes shape checks there).
  if (!deterministic) {
    return 1;
  }
  return report.finish();
}
