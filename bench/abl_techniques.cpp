// Extension bench: hardware vs software power-limiting techniques.
//
// Generalizes paper Fig. 5 into the Zhang & Hoffmann (paper ref. [3])
// style comparison — at matched power levels, how much progress does each
// technique preserve, and how much energy does each unit of progress cost?
//
//   rapl  hardware: PL1 firmware (DVFS first, duty-cycle fallback)
//   dvfs  software: P-state feedback controller at 10 Hz
//   ddcm  software: duty-cycle feedback controller at 10 Hz
//
// Expected ranking (and the paper's Fig. 5 point):
//   * RAPL ties software DVFS wherever DVFS can reach — its enforcement
//     *is* DVFS in that range;
//   * DDCM is the worst technique at every power level: clock gating at
//     full voltage forgoes the V^2 savings DVFS gets, and for
//     memory-bound code it additionally stretches the stalls that
//     frequency scaling leaves alone (STREAM suffers most).
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/rig.hpp"
#include "policy/actuators.hpp"
#include "progress/monitor.hpp"
#include "shape_check.hpp"
#include "util/table.hpp"

namespace {

using namespace procap;

struct Point {
  Watts power = 0.0;
  double rate = 0.0;
  double joules_per_unit = 0.0;
};

enum class Technique { kRapl, kDvfs, kDdcm };

Point run(const apps::AppModel& app, Technique technique, Watts target) {
  exp::SimRig rig;
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), app.spec.name,
                            rig.time());
  rig.engine().every(kNanosPerSecond, [&](Nanos) { monitor.poll(); });

  std::unique_ptr<policy::PowerLimiter> limiter;
  switch (technique) {
    case Technique::kRapl:
      limiter = std::make_unique<policy::RaplLimiter>(rig.rapl());
      break;
    case Technique::kDvfs:
      limiter = std::make_unique<policy::DvfsPowerLimiter>(rig.rapl());
      break;
    case Technique::kDdcm:
      limiter = std::make_unique<policy::DdcmPowerLimiter>(rig.rapl());
      break;
  }
  limiter->attach(rig.engine());
  limiter->set_target(target);
  rig.engine().run_for(to_nanos(30.0));

  Point point;
  point.rate = monitor.rates().mean_in(to_nanos(10.0), to_nanos(30.0));
  // Mean power over the settled portion, via the package energy counter.
  const Joules e0 = rig.package().energy();
  // (energy() is cumulative; measure over a further settled window)
  rig.engine().run_for(to_nanos(10.0));
  point.power = (rig.package().energy() - e0) / 10.0;
  point.joules_per_unit = point.rate > 0.0 ? point.power / point.rate : 0.0;
  return point;
}

}  // namespace

int main() {
  using bench::shape_check;
  std::cout << "== Extension: power-limiting techniques compared ==\n"
            << "30 s settle + 10 s measure per point; software controllers\n"
            << "run at 10 Hz over the libmsr-style interface.\n";

  const std::vector<Watts> targets = {60.0, 80.0, 100.0, 120.0};
  for (const char* app_name : {"lammps", "stream"}) {
    const auto app = apps::by_name(app_name);
    std::cout << "\n-- " << app_name << " --\n";
    TablePrinter table({"target W", "rapl W", "rapl rate", "dvfs W",
                        "dvfs rate", "ddcm W", "ddcm rate"});
    std::vector<Point> rapl_pts;
    std::vector<Point> dvfs_pts;
    std::vector<Point> ddcm_pts;
    for (const Watts target : targets) {
      const Point r = run(app, Technique::kRapl, target);
      const Point v = run(app, Technique::kDvfs, target);
      const Point d = run(app, Technique::kDdcm, target);
      rapl_pts.push_back(r);
      dvfs_pts.push_back(v);
      ddcm_pts.push_back(d);
      table.add_row({num(target, 0), num(r.power, 1), num(r.rate, 1),
                     num(v.power, 1), num(v.rate, 1), num(d.power, 1),
                     num(d.rate, 1)});
    }
    table.print(std::cout);

    if (std::string(app_name) == "lammps") {
      // Compute-bound: RAPL's enforcement *is* DVFS in this range, so the
      // hardware and software-DVFS curves coincide...
      bool rapl_ties_dvfs = true;
      bool ddcm_much_worse = true;
      for (std::size_t i = 0; i < targets.size(); ++i) {
        rapl_ties_dvfs &= std::abs(rapl_pts[i].rate - dvfs_pts[i].rate) <
                          0.04 * dvfs_pts[i].rate;
        // ...while DDCM gates the clock at full voltage: no V^2 savings,
        // so at equal power it preserves far less progress.
        ddcm_much_worse &= ddcm_pts[i].rate < 0.85 * dvfs_pts[i].rate;
      }
      shape_check("lammps: RAPL ties software DVFS at every target "
                  "(within 4%)",
                  rapl_ties_dvfs);
      shape_check("lammps: DDCM preserves far less progress at equal power "
                  "(duty cycling forgoes voltage scaling)",
                  ddcm_much_worse);
    } else {
      // Memory-bound: DVFS beats DDCM clearly at stringent targets, and
      // holds more progress per watt than DDCM everywhere it can reach.
      bool dvfs_beats_ddcm = true;
      for (std::size_t i = 0; i < 2; ++i) {  // the two stringent targets
        dvfs_beats_ddcm &= dvfs_pts[i].rate > 1.25 * ddcm_pts[i].rate;
      }
      shape_check("stream: DVFS preserves >25% more progress than DDCM at "
                  "stringent targets",
                  dvfs_beats_ddcm);
      shape_check("stream: RAPL sits between DVFS and DDCM (or ties DVFS) "
                  "at stringent targets",
                  rapl_pts[0].rate <= dvfs_pts[0].rate * 1.05 &&
                      rapl_pts[0].rate >= ddcm_pts[0].rate * 0.95);
      // Energy efficiency: at the 80 W target, DDCM costs more energy per
      // unit of progress than DVFS.
      shape_check("stream: DDCM costs >20% more joules per iteration than "
                  "DVFS at 80 W",
                  ddcm_pts[1].joules_per_unit >
                      1.2 * dvfs_pts[1].joules_per_unit);
    }
    // All software controllers actually hold their targets.
    bool on_target = true;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      // DVFS cannot reach below its floor; skip unreachable targets.
      if (dvfs_pts[i].power > targets[i] + 4.0 &&
          std::abs(dvfs_pts[i].power - dvfs_pts.back().power) > 4.0) {
        on_target = false;
      }
      if (ddcm_pts[i].power > targets[i] + 4.0) {
        on_target = false;
      }
    }
    shape_check(std::string(app_name) +
                    ": software controllers hold reachable targets "
                    "(within 4 W)",
                on_target);
  }
  return bench::shape_summary();
}
