// Table I reproduction: MIPS is not correlated with online performance.
//
// Runs the paper's Listing-1 workload (24 ranks, 5 one-second iterations)
// in both the balanced and imbalanced variants and reports, per variant:
//   * Definition 1 of online performance: iterations per second,
//   * Definition 2: work units (rank-microseconds of sleep) per second,
//   * MIPS from the PAPI-like counters.
// The paper's point: Definition 1 is identical across variants while MIPS
// differs by ~20x (busy-wait at the barrier), so MIPS is a misleading
// progress signal.
#include <cmath>
#include <iostream>

#include "apps/listing1.hpp"
#include "shape_check.hpp"
#include "counters/derived.hpp"
#include "exp/rig.hpp"
#include "progress/monitor.hpp"
#include "util/table.hpp"

namespace {

struct Listing1Result {
  double iterations_per_s = 0.0;  // online performance, Definition 1
  double work_units_per_s = 0.0;  // online performance, Definition 2
  double mips = 0.0;
};

Listing1Result run(procap::apps::WorkPattern pattern) {
  using namespace procap;
  exp::SimRig rig;
  apps::Listing1App app(rig.package(), rig.broker(), pattern, 5);
  progress::Monitor monitor(rig.broker().make_sub(), "listing1", rig.time());
  rig.engine().every(kNanosPerSecond, [&](Nanos) { monitor.poll(); });

  counters::NodeCounterSource source(rig.node());
  auto events = counters::make_standard_event_set(source, rig.time());
  events.start();
  rig.engine().run_until([&] { return app.done(); }, to_nanos(30.0));
  monitor.poll();

  const Seconds elapsed = to_seconds(rig.engine().now());
  Listing1Result result;
  result.iterations_per_s =
      static_cast<double>(app.iterations_completed()) / elapsed;
  result.work_units_per_s =
      app.work_units_per_iteration() *
      static_cast<double>(app.iterations_completed()) / elapsed;
  result.mips = counters::snapshot(events).mips();
  return result;
}

}  // namespace

int main() {
  using namespace procap;
  std::cout << "== Table I: correlation between MIPS and online performance ==\n"
            << "Listing-1 workload, 24 ranks, 5 iterations, 1 work unit per\n"
            << "microsecond of sleep; highest rank is the critical path.\n\n";

  const Listing1Result equal = run(apps::WorkPattern::kEqual);
  const Listing1Result unequal = run(apps::WorkPattern::kUnequal);

  TablePrinter table({"MPI procs", "do_work routine", "Def1 (iters/s)",
                      "Def2 (work units/s)", "MIPS"});
  table.add_row({"24", "do_equal_work", num(equal.iterations_per_s, 3),
                 num(equal.work_units_per_s, 0), num(equal.mips, 1)});
  table.add_row({"24", "do_unequal_work", num(unequal.iterations_per_s, 3),
                 num(unequal.work_units_per_s, 0), num(unequal.mips, 1)});
  table.print(std::cout);

  std::cout << "\nPaper reference (Table I): Def1 0.998 / 0.998, "
               "MIPS 4,115.5 / 79,724.1\n\nShape checks:\n";
  using bench::shape_check;
  shape_check("Definition-1 progress is ~1 iteration/s for both variants",
              std::abs(equal.iterations_per_s - 1.0) < 0.05 &&
                  std::abs(unequal.iterations_per_s - 1.0) < 0.05);
  shape_check("Definition-1 progress identical across variants (<2% apart)",
              std::abs(equal.iterations_per_s - unequal.iterations_per_s) <
                  0.02 * equal.iterations_per_s);
  shape_check("MIPS inflated by >10x under imbalance (busy-wait)",
              unequal.mips > 10.0 * equal.mips);
  shape_check("Definition-2 work rate ~2x higher when balanced",
              std::abs(equal.work_units_per_s / unequal.work_units_per_s -
                       1.92) < 0.15);
  return bench::shape_summary();
}
