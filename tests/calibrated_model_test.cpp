// Tests for the calibrated (piecewise-alpha) model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/calibrated.hpp"

namespace procap::model {
namespace {

ModelParams base_params() {
  ModelParams p;
  p.beta = 0.9;
  p.p_core_max = 150.0;
  p.r_max = 20.0;
  return p;
}

// Ground truth with a regime-dependent alpha, like the simulator's
// turbo/DVFS split: steep near the top, shallow below.
double true_alpha(Watts cap) { return cap > 90.0 ? 3.5 : 1.8; }

std::vector<CapObservation> synth_observations() {
  const ModelParams base = base_params();
  std::vector<CapObservation> obs;
  for (Watts cap = 30.0; cap <= 140.0 + 1e-9; cap += 10.0) {
    ModelParams truth = base;
    truth.alpha = true_alpha(cap);
    obs.push_back({cap, delta_progress(truth, cap)});
  }
  return obs;
}

TEST(CalibratedModel, ValidatesInput) {
  const auto obs = synth_observations();
  EXPECT_THROW(CalibratedModel(base_params(), obs, 0), std::invalid_argument);
  EXPECT_THROW(CalibratedModel(base_params(), obs, 20),
               std::invalid_argument);
  const std::vector<CapObservation> tiny(obs.begin(), obs.begin() + 1);
  EXPECT_THROW(CalibratedModel(base_params(), tiny, 1),
               std::invalid_argument);
}

TEST(CalibratedModel, BandsAreOrderedAndCoverTheRange) {
  const auto obs = synth_observations();
  const CalibratedModel model(base_params(), obs, 3);
  ASSERT_EQ(model.bands().size(), 3U);
  EXPECT_DOUBLE_EQ(model.bands().front().lo, 30.0);
  EXPECT_DOUBLE_EQ(model.bands().back().hi, 140.0);
  for (std::size_t b = 1; b < model.bands().size(); ++b) {
    EXPECT_GE(model.bands()[b].lo, model.bands()[b - 1].hi);
  }
}

TEST(CalibratedModel, RecoversRegimeAlphas) {
  const auto obs = synth_observations();
  const CalibratedModel model(base_params(), obs, 2);
  // Low band ~1.8, high band ~3.5 (band edges straddle the regime split,
  // so allow slack).
  EXPECT_NEAR(model.bands().front().alpha, 1.8, 0.4);
  EXPECT_NEAR(model.bands().back().alpha, 3.5, 0.6);
}

TEST(CalibratedModel, BeatsFixedAlphaTwo) {
  const auto obs = synth_observations();
  const CalibratedModel calibrated(base_params(), obs, 3);
  ModelParams fixed = base_params();
  fixed.alpha = 2.0;
  const double fixed_mape = summarize(evaluate(fixed, obs)).mape;
  EXPECT_LT(calibrated.calibration_mape(), 0.5 * fixed_mape);
}

TEST(CalibratedModel, PredictsHeldOutPoints) {
  // Calibrate on even caps, test on odd caps.
  const ModelParams base = base_params();
  std::vector<CapObservation> train;
  std::vector<CapObservation> test;
  for (Watts cap = 30.0; cap <= 140.0 + 1e-9; cap += 5.0) {
    ModelParams truth = base;
    truth.alpha = true_alpha(cap);
    const CapObservation obs{cap, delta_progress(truth, cap)};
    (static_cast<long>(cap) % 10 == 0 ? train : test).push_back(obs);
  }
  const CalibratedModel model(base, train, 3);
  for (const auto& obs : test) {
    if (std::abs(obs.p_core_cap - 90.0) <= 10.0) {
      continue;  // points at the regime discontinuity are band-ambiguous
    }
    const double predicted = model.predict_delta(obs.p_core_cap);
    EXPECT_NEAR(predicted, obs.measured_delta,
                0.25 * obs.measured_delta + 0.05)
        << "cap " << obs.p_core_cap;
  }
}

TEST(CalibratedModel, OutOfRangeUsesNearestBand) {
  const auto obs = synth_observations();
  const CalibratedModel model(base_params(), obs, 2);
  // Below range: first band's alpha; above: last band's.
  EXPECT_GT(model.predict_delta(10.0), model.predict_delta(30.0));
  EXPECT_DOUBLE_EQ(model.predict_rate(200.0), base_params().r_max);
}

TEST(CalibratedModel, RateAndDeltaAreConsistent) {
  const auto obs = synth_observations();
  const CalibratedModel model(base_params(), obs, 3);
  for (Watts cap = 35.0; cap <= 135.0; cap += 20.0) {
    EXPECT_NEAR(model.predict_rate(cap) + model.predict_delta(cap),
                base_params().r_max, 1e-9);
  }
}

}  // namespace
}  // namespace procap::model
