// Tests for the libmsr-style RaplInterface over an emulated MSR device.
#include <gtest/gtest.h>

#include "msr/addresses.hpp"
#include "msr/emulated.hpp"
#include "rapl/rapl.hpp"
#include "util/time.hpp"

namespace procap::rapl {
namespace {

// Minimal hand-wired MSR device (no hw::Node): registers behave as plain
// storage except energy, which this fixture scripts directly.
class RaplInterfaceTest : public ::testing::Test {
 protected:
  RaplInterfaceTest() : dev_(4) {
    dev_.define(msr::kMsrRaplPowerUnit, RaplUnits::encode(3, 14, 10));
    dev_.define(msr::kMsrPkgEnergyStatus, 0);
    dev_.define(msr::kMsrPkgPowerLimit, 0);
    dev_.define(msr::kIa32PerfCtl, encode_perf_ctl(3.3e9));
    dev_.define(msr::kIa32PerfStatus, encode_perf_ctl(3.3e9));
    dev_.define(msr::kIa32ClockModulation, 0);
    dev_.define(msr::kMsrDramEnergyStatus, 0);
    dev_.define(msr::kMsrDramPowerLimit, 0);
  }

  void set_energy(Joules j) {
    dev_.poke(0, msr::kMsrPkgEnergyStatus,
              encode_energy(j, RaplUnits::skylake()));
  }

  msr::EmulatedMsr dev_;
  ManualTimeSource clock_;
};

TEST_F(RaplInterfaceTest, ReadsUnits) {
  RaplInterface rapl(dev_, clock_);
  EXPECT_DOUBLE_EQ(rapl.units().power_unit, 0.125);
}

TEST_F(RaplInterfaceTest, RejectsEmptyPackageList) {
  EXPECT_THROW(RaplInterface(dev_, clock_, {}), std::invalid_argument);
}

TEST_F(RaplInterfaceTest, PackageIndexChecked) {
  RaplInterface rapl(dev_, clock_);
  EXPECT_THROW((void)rapl.pkg_energy(1), std::out_of_range);
}

TEST_F(RaplInterfaceTest, EnergyAccumulates) {
  RaplInterface rapl(dev_, clock_);
  set_energy(0.0);
  EXPECT_NEAR(rapl.pkg_energy(), 0.0, 1e-3);
  set_energy(150.0);
  EXPECT_NEAR(rapl.pkg_energy(), 150.0, 1e-3);
}

TEST_F(RaplInterfaceTest, PowerFromEnergyOverTime) {
  RaplInterface rapl(dev_, clock_);
  set_energy(0.0);
  (void)rapl.pkg_power();  // priming read
  set_energy(100.0);
  clock_.advance(to_nanos(2.0));
  EXPECT_NEAR(rapl.pkg_power(), 50.0, 0.1);  // 100 J over 2 s
}

TEST_F(RaplInterfaceTest, SetCapProgramsPl1) {
  RaplInterface rapl(dev_, clock_);
  rapl.set_pkg_cap(95.0, 0.01);
  const PkgPowerLimit limit = rapl.pkg_limit();
  EXPECT_NEAR(limit.pl1.power, 95.0, 0.125);
  EXPECT_TRUE(limit.pl1.enabled);
  EXPECT_TRUE(limit.pl1.clamped);
  EXPECT_NEAR(limit.pl1.time_window, 0.01, 0.0025);
}

TEST_F(RaplInterfaceTest, ClearCapDisablesPl1) {
  RaplInterface rapl(dev_, clock_);
  rapl.set_pkg_cap(95.0);
  rapl.clear_pkg_cap();
  const PkgPowerLimit limit = rapl.pkg_limit();
  EXPECT_FALSE(limit.pl1.enabled);
  // Power value survives the disable (read-modify-write).
  EXPECT_NEAR(limit.pl1.power, 95.0, 0.125);
}

TEST_F(RaplInterfaceTest, SetCapRejectsNonPositive) {
  RaplInterface rapl(dev_, clock_);
  EXPECT_THROW(rapl.set_pkg_cap(0.0), std::invalid_argument);
  EXPECT_THROW(rapl.set_pkg_cap(-5.0), std::invalid_argument);
}

TEST_F(RaplInterfaceTest, FrequencyWriteAndRead) {
  RaplInterface rapl(dev_, clock_);
  rapl.set_frequency(2.5e9);
  // This fixture has no firmware; PERF_STATUS mirrors what we poke.
  dev_.poke(0, msr::kIa32PerfStatus, dev_.peek(0, msr::kIa32PerfCtl));
  EXPECT_DOUBLE_EQ(rapl.frequency(), 2.5e9);
}

TEST_F(RaplInterfaceTest, ClockModulationRoundTrip) {
  RaplInterface rapl(dev_, clock_);
  rapl.set_clock_modulation(0.5);
  EXPECT_DOUBLE_EQ(rapl.clock_modulation(), 0.5);
  rapl.set_clock_modulation(1.0);
  EXPECT_DOUBLE_EQ(rapl.clock_modulation(), 1.0);
}

TEST(PerfCtlCodec, RatioEncoding) {
  EXPECT_EQ(encode_perf_ctl(3.3e9), 33ULL << 8);
  EXPECT_DOUBLE_EQ(decode_perf_status(33ULL << 8), 3.3e9);
  // Rounded to the nearest 100 MHz ratio.
  EXPECT_DOUBLE_EQ(decode_perf_status(encode_perf_ctl(2.649e9)), 2.6e9);
}

TEST(ClockModulationCodec, ExtendedFormat) {
  // duty 0.5 -> level 8, enable bit set.
  EXPECT_EQ(encode_clock_modulation(0.5), 0x8ULL | (1ULL << 4));
  EXPECT_DOUBLE_EQ(decode_clock_modulation(0x8ULL | (1ULL << 4)), 0.5);
  // Disabled -> full duty.
  EXPECT_EQ(encode_clock_modulation(1.0), 0U);
  EXPECT_DOUBLE_EQ(decode_clock_modulation(0), 1.0);
}

TEST(ClockModulationCodec, LowestDutyIsOneSixteenth) {
  const auto raw = encode_clock_modulation(0.01);
  EXPECT_DOUBLE_EQ(decode_clock_modulation(raw), 1.0 / 16.0);
}

TEST(ClockModulationCodec, RejectsOutOfRange) {
  EXPECT_THROW((void)encode_clock_modulation(0.0), std::invalid_argument);
  EXPECT_THROW((void)encode_clock_modulation(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace procap::rapl
