// Integration tests across the full stack: app + node + RAPL + policy +
// progress + model, via the experiment harness.  These are the paper's
// experimental procedures run end to end at reduced durations.
#include <gtest/gtest.h>

#include <memory>

#include "exp/measure.hpp"
#include "model/progress_model.hpp"
#include "policy/schedule_shapes.hpp"
#include "util/stats.hpp"

namespace procap::exp {
namespace {

TEST(Characterize, LammpsBetaAndMpo) {
  const auto c = characterize(apps::lammps(), 1.6e9, 10.0);
  EXPECT_NEAR(c.beta, 1.00, 0.03);
  EXPECT_NEAR(c.mpo * 1e3, 0.32, 0.08);
  EXPECT_NEAR(c.power_uncapped, 150.0, 10.0);
  // Pinned at the 3300 MHz nominal max: 20 timesteps/s.
  EXPECT_NEAR(c.rate_nominal, 20.0 * 40000.0, 0.06 * 20.0 * 40000.0);
  // Uncapped (turbo, 3700 MHz) runs faster than nominal.
  EXPECT_GT(c.rate_uncapped, 1.08 * c.rate_nominal);
}

TEST(Characterize, StreamBetaAndMpo) {
  const auto c = characterize(apps::stream(), 1.6e9, 10.0);
  EXPECT_NEAR(c.beta, 0.37, 0.04);
  EXPECT_NEAR(c.mpo * 1e3, 50.9, 5.0);
  // Memory-bound: substantial uncore power.
  EXPECT_GT(c.power_uncapped, 120.0);
}

TEST(Characterize, AmgBetaDespiteNoise) {
  const auto c = characterize(apps::amg(), 1.6e9, 15.0);
  EXPECT_NEAR(c.beta, 0.52, 0.06);
  EXPECT_NEAR(c.mpo * 1e3, 30.1, 3.0);
}

TEST(RunUnderSchedule, ProgressFollowsStepCap) {
  // Paper Section V-C: "online performance follows the power capping
  // function being applied."
  RunOptions options;
  options.duration = 40.0;
  auto traces = run_under_schedule(
      apps::lammps(),
      std::make_unique<policy::StepCap>(std::nullopt, 80.0, 10.0, 10.0),
      options);
  // Uncapped and capped plateaus differ clearly.
  const double high1 = traces.mean_rate(4.0, 10.0);
  const double low1 = traces.mean_rate(14.0, 20.0);
  const double high2 = traces.mean_rate(24.0, 30.0);
  const double low2 = traces.mean_rate(34.0, 40.0);
  EXPECT_GT(high1, low1 * 1.10);
  EXPECT_GT(high2, low2 * 1.10);
  // And the progress recovers when the cap lifts.
  EXPECT_NEAR(high2, high1, 0.08 * high1);
}

TEST(RunUnderSchedule, CapAndProgressCorrelate) {
  RunOptions options;
  options.duration = 60.0;
  auto traces = run_under_schedule(
      apps::qmcpack_dmc(),
      std::make_unique<policy::JaggedCap>(150.0, 60.0, 15.0), options);
  // Sample both series at 1 Hz and correlate: progress tracks the cap.
  const auto caps = traces.cap.values();
  std::vector<double> rates;
  for (std::size_t i = 0; i < traces.progress.size(); ++i) {
    rates.push_back(traces.progress[i].value);
  }
  const std::size_t n = std::min(caps.size(), rates.size());
  const std::vector<double> c(caps.begin() + 2, caps.begin() + static_cast<std::ptrdiff_t>(n));
  const std::vector<double> r(rates.begin() + 2, rates.begin() + static_cast<std::ptrdiff_t>(n));
  EXPECT_GT(pearson(c, r), 0.6);
}

TEST(RunUnderSchedule, PinnedFrequencyActsAsDvfs) {
  RunOptions options;
  options.duration = 10.0;
  options.pinned_frequency = mhz(1600);
  auto traces = run_under_schedule(apps::lammps(),
                                   std::make_unique<policy::UncappedSchedule>(),
                                   options);
  EXPECT_NEAR(traces.mean_frequency(2.0, 10.0), 1600.0, 10.0);
}

TEST(MeasureCapImpact, MildCapSmallDelta) {
  const auto impact = measure_cap_impact(apps::lammps(), 140.0, 1);
  EXPECT_NEAR(impact.power_uncapped, 149.0, 10.0);
  EXPECT_NEAR(impact.power_capped, 140.0, 6.0);
  EXPECT_LT(impact.delta, 0.12 * impact.rate_uncapped);
  EXPECT_GE(impact.delta, -0.03 * impact.rate_uncapped);
}

TEST(MeasureCapImpact, StringentCapLargeDelta) {
  const auto impact = measure_cap_impact(apps::lammps(), 60.0, 1);
  EXPECT_GT(impact.delta, 0.3 * impact.rate_uncapped);
  EXPECT_NEAR(impact.power_capped, 60.0, 5.0);
}

TEST(MeasureCapImpact, MemoryBoundLosesLessAtEqualRelativeCaps) {
  // Capping each app to 70 % of its own uncapped power: the low-beta app
  // loses less progress for the same relative budget cut (Eq. 4).
  const auto lammps_unc = measure_cap_impact(apps::lammps(), 500.0, 1);
  const auto stream_unc = measure_cap_impact(apps::stream(), 500.0, 1);
  const auto lammps_impact =
      measure_cap_impact(apps::lammps(), 0.7 * lammps_unc.power_uncapped, 1);
  const auto stream_impact =
      measure_cap_impact(apps::stream(), 0.7 * stream_unc.power_uncapped, 1);
  EXPECT_GT(lammps_impact.delta / lammps_impact.rate_uncapped,
            stream_impact.delta / stream_impact.rate_uncapped);
}

TEST(ModelValidation, MidRangePredictionWithinPaperErrorBand) {
  // The paper's model with alpha=2 predicts LAMMPS mid-range impact
  // within ~13-19 %.  Reproduce that against the simulator.
  const auto c = characterize(apps::lammps(), 1.6e9, 10.0);
  model::ModelParams params;
  params.beta = c.beta;
  params.alpha = 2.0;
  params.p_core_max = c.beta * c.power_uncapped;
  params.r_max = c.rate_uncapped;

  const auto impact = measure_cap_impact(apps::lammps(), 80.0, 1);
  const double predicted = model::delta_progress(
      params, model::effective_core_cap(c.beta, 80.0));
  ASSERT_GT(impact.delta, 0.0);
  const double err = std::abs(predicted - impact.delta) / impact.delta;
  EXPECT_LT(err, 0.35);
}

TEST(ModelValidation, DutyCyclingBreaksTheModelAtStringentCaps) {
  // Below the DVFS floor the firmware duty-cycles; the DVFS-only model
  // must underestimate the impact (paper Fig. 4a/4d discussion).
  const auto c = characterize(apps::lammps(), 1.6e9, 10.0);
  model::ModelParams params;
  params.beta = c.beta;
  params.alpha = 2.0;
  params.p_core_max = c.beta * c.power_uncapped;
  params.r_max = c.rate_uncapped;

  const auto impact = measure_cap_impact(apps::lammps(), 26.0, 1);
  const double predicted = model::delta_progress(
      params, model::effective_core_cap(c.beta, 26.0));
  EXPECT_LT(predicted, impact.delta);  // underestimates the damage
}

TEST(RunUnderSchedule, LossyLinkYieldsZeroWindows) {
  RunOptions options;
  options.duration = 30.0;
  options.link.drop_probability = 0.5;
  options.link.seed = 11;
  auto traces = run_under_schedule(apps::openmc_active(),
                                   std::make_unique<policy::UncappedSchedule>(),
                                   options);
  std::size_t zeros = 0;
  for (std::size_t i = 2; i < traces.progress.size(); ++i) {
    if (traces.progress[i].value == 0.0) {
      ++zeros;
    }
  }
  EXPECT_GT(zeros, 3U);
}

}  // namespace
}  // namespace procap::exp

namespace procap::exp {
namespace {

TEST(Determinism, IdenticalSeedsGiveBitIdenticalRuns) {
  // Everything in the simulator is deterministic: same seed, same traces,
  // bit for bit.  This is what makes every number in EXPERIMENTS.md
  // regenerable.
  auto run = [] {
    RunOptions options;
    options.duration = 20.0;
    options.seed = 1234;
    return run_under_schedule(
        apps::amg(), std::make_unique<policy::StepCap>(std::nullopt, 80.0,
                                                       6.0, 6.0),
        options);
  };
  const RunTraces a = run();
  const RunTraces b = run();
  ASSERT_EQ(a.progress.size(), b.progress.size());
  for (std::size_t i = 0; i < a.progress.size(); ++i) {
    ASSERT_EQ(a.progress[i], b.progress[i]) << "window " << i;
  }
  ASSERT_EQ(a.power.size(), b.power.size());
  for (std::size_t i = 0; i < a.power.size(); ++i) {
    ASSERT_EQ(a.power[i], b.power[i]) << "second " << i;
  }
  EXPECT_DOUBLE_EQ(a.total_progress, b.total_progress);
}

TEST(Determinism, DifferentSeedsDifferOnNoisyWorkloads) {
  // Totals can coincide (iteration counts are small integers); the
  // window-by-window timing of a noisy workload cannot.
  auto windows = [](std::uint64_t seed) {
    RunOptions options;
    options.duration = 15.0;
    options.seed = seed;
    return run_under_schedule(apps::amg(),
                              std::make_unique<policy::UncappedSchedule>(),
                              options)
        .progress.values();
  };
  const auto a = windows(1);
  const auto b = windows(2);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace procap::exp
