// Tests for the in-process pub/sub broker.
#include <gtest/gtest.h>

#include "msgbus/bus.hpp"
#include "util/time.hpp"

namespace procap::msgbus {
namespace {

class MsgbusTest : public ::testing::Test {
 protected:
  ManualTimeSource clock_;
  Broker broker_{clock_};
};

TEST_F(MsgbusTest, TopicPrefixMatching) {
  EXPECT_TRUE(topic_matches("progress/lammps", "progress/"));
  EXPECT_TRUE(topic_matches("progress/lammps", "progress/lammps"));
  EXPECT_TRUE(topic_matches("anything", ""));
  EXPECT_FALSE(topic_matches("progress", "progress/"));
  EXPECT_FALSE(topic_matches("power/x", "progress/"));
}

TEST_F(MsgbusTest, DeliversMatchingMessages) {
  auto pub = broker_.make_pub();
  auto sub = broker_.make_sub();
  sub->subscribe("progress/");
  pub->publish("progress/lammps", "hello");
  const auto msg = sub->try_recv();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->topic, "progress/lammps");
  EXPECT_EQ(msg->payload, "hello");
}

TEST_F(MsgbusTest, NoFiltersReceivesNothing) {
  auto pub = broker_.make_pub();
  auto sub = broker_.make_sub();
  pub->publish("progress/x", "data");
  EXPECT_FALSE(sub->try_recv().has_value());
}

TEST_F(MsgbusTest, NonMatchingTopicFiltered) {
  auto pub = broker_.make_pub();
  auto sub = broker_.make_sub();
  sub->subscribe("power/");
  pub->publish("progress/x", "data");
  EXPECT_FALSE(sub->try_recv().has_value());
  EXPECT_EQ(sub->pending(), 0U);
}

TEST_F(MsgbusTest, UnsubscribeStopsDelivery) {
  auto pub = broker_.make_pub();
  auto sub = broker_.make_sub();
  sub->subscribe("a/");
  pub->publish("a/1", "x");
  sub->unsubscribe("a/");
  pub->publish("a/2", "y");
  ASSERT_TRUE(sub->try_recv().has_value());
  EXPECT_FALSE(sub->try_recv().has_value());
}

TEST_F(MsgbusTest, MessagesStampedWithBusClock) {
  auto pub = broker_.make_pub();
  auto sub = broker_.make_sub();
  sub->subscribe("");
  clock_.advance(12345);
  pub->publish("t", "p");
  const auto msg = sub->try_recv();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->timestamp, 12345);
}

TEST_F(MsgbusTest, FifoOrderPreserved) {
  auto pub = broker_.make_pub();
  auto sub = broker_.make_sub();
  sub->subscribe("");
  pub->publish("t", "1");
  pub->publish("t", "2");
  pub->publish("t", "3");
  EXPECT_EQ(sub->try_recv()->payload, "1");
  EXPECT_EQ(sub->try_recv()->payload, "2");
  EXPECT_EQ(sub->try_recv()->payload, "3");
}

TEST_F(MsgbusTest, FanOutToMultipleSubscribers) {
  auto pub = broker_.make_pub();
  auto sub1 = broker_.make_sub();
  auto sub2 = broker_.make_sub();
  sub1->subscribe("");
  sub2->subscribe("");
  pub->publish("t", "x");
  EXPECT_TRUE(sub1->try_recv().has_value());
  EXPECT_TRUE(sub2->try_recv().has_value());
}

TEST_F(MsgbusTest, DeadSubscribersArePruned) {
  auto pub = broker_.make_pub();
  {
    auto sub = broker_.make_sub();
    sub->subscribe("");
  }
  pub->publish("t", "x");  // must not crash
  EXPECT_EQ(broker_.routed(), 1U);
}

TEST_F(MsgbusTest, DelayedDelivery) {
  auto pub = broker_.make_pub();
  LinkOptions opts;
  opts.latency = 1000;
  auto sub = broker_.make_sub(opts);
  sub->subscribe("");
  pub->publish("t", "late");
  EXPECT_FALSE(sub->try_recv().has_value());  // not yet deliverable
  EXPECT_EQ(sub->pending(), 1U);
  clock_.advance(1000);
  const auto msg = sub->try_recv();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "late");
}

TEST_F(MsgbusTest, LossyLinkDropsApproximatelyAtRate) {
  auto pub = broker_.make_pub();
  LinkOptions opts;
  opts.drop_probability = 0.3;
  opts.seed = 42;
  auto sub = broker_.make_sub(opts);
  sub->subscribe("");
  constexpr int kMessages = 5000;
  for (int i = 0; i < kMessages; ++i) {
    pub->publish("t", "x");
  }
  const auto dropped = static_cast<double>(sub->dropped());
  EXPECT_NEAR(dropped / kMessages, 0.3, 0.03);
  EXPECT_EQ(sub->pending() + sub->dropped(), static_cast<std::size_t>(kMessages));
}

TEST_F(MsgbusTest, ZeroDropProbabilityLosesNothing) {
  auto pub = broker_.make_pub();
  auto sub = broker_.make_sub();
  sub->subscribe("");
  for (int i = 0; i < 1000; ++i) {
    pub->publish("t", "x");
  }
  EXPECT_EQ(sub->dropped(), 0U);
  EXPECT_EQ(sub->pending(), 1000U);
}

TEST_F(MsgbusTest, PublishCountTracked) {
  auto pub = broker_.make_pub();
  pub->publish("a", "1");
  pub->publish("b", "2");
  EXPECT_EQ(pub->published(), 2U);
  EXPECT_EQ(broker_.routed(), 2U);
}

}  // namespace
}  // namespace procap::msgbus
