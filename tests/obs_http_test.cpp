// Tests for the embedded HTTP server and client: round-trips on an
// ephemeral port, handler dispatch, query strings, 404/405 behaviour,
// concurrent requests against thread-safe handlers, and clean restart.
#include "obs/http.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace {

using procap::obs::HttpResponse;
using procap::obs::HttpServer;
using procap::obs::http_get;

TEST(ObsHttp, ServesRegisteredHandlerOnEphemeralPort) {
  HttpServer server;
  server.handle("/ping", [](const std::string&) {
    return HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  ASSERT_GT(server.port(), 0);
  const auto result = http_get("127.0.0.1", server.port(), "/ping");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, 200);
  EXPECT_EQ(result->body, "pong\n");
  EXPECT_GE(server.requests_served(), 1u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ObsHttp, DispatchesByExactPathAndPassesQuery) {
  HttpServer server;
  std::string seen_query;
  server.handle("/a", [](const std::string&) {
    return HttpResponse{200, "text/plain", "handler-a"};
  });
  server.handle("/b", [&seen_query](const std::string& query) {
    seen_query = query;
    return HttpResponse{200, "text/plain", "handler-b"};
  });
  ASSERT_TRUE(server.start());
  const auto a = http_get("127.0.0.1", server.port(), "/a");
  const auto b = http_get("127.0.0.1", server.port(), "/b?since=5&x=1");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->body, "handler-a");
  EXPECT_EQ(b->body, "handler-b");
  EXPECT_EQ(seen_query, "since=5&x=1");
}

TEST(ObsHttp, UnknownPathIs404) {
  HttpServer server;
  server.handle("/known", [](const std::string&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_TRUE(server.start());
  const auto result = http_get("127.0.0.1", server.port(), "/unknown");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, 404);
  // Exact match: a prefix of a registered path is still unknown.
  const auto prefix = http_get("127.0.0.1", server.port(), "/kno");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->status, 404);
}

TEST(ObsHttp, SequentialAndConcurrentRequestsAllAnswered) {
  HttpServer server;
  std::atomic<int> calls{0};
  server.handle("/count", [&calls](const std::string&) {
    calls.fetch_add(1);
    return HttpResponse{200, "text/plain", "counted"};
  });
  ASSERT_TRUE(server.start());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto r = http_get("127.0.0.1", server.port(), "/count");
        if (r && r->status == 200) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(calls.load(), kThreads * kPerThread);
}

TEST(ObsHttp, ClientReportsFailureWhenNothingListens) {
  // Grab an ephemeral port, then close it so nothing is listening.
  std::uint16_t dead_port = 0;
  {
    HttpServer probe;
    ASSERT_TRUE(probe.start());
    dead_port = probe.port();
    probe.stop();
  }
  const auto result = http_get("127.0.0.1", dead_port, "/", 500);
  EXPECT_FALSE(result.has_value());
}

TEST(ObsHttp, StopIsIdempotentAndServerRestartable) {
  HttpServer server;
  server.handle("/x", [](const std::string&) {
    return HttpResponse{200, "text/plain", "x"};
  });
  ASSERT_TRUE(server.start());
  server.stop();
  server.stop();  // no-op
  ASSERT_TRUE(server.start());
  const auto r = http_get("127.0.0.1", server.port(), "/x");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  server.stop();
}

}  // namespace
