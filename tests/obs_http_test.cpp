// Tests for the embedded HTTP server and client: round-trips on an
// ephemeral port, handler dispatch, query strings, 404/405 behaviour,
// concurrent requests against thread-safe handlers, clean restart, and
// the event-loop guarantees — keep-alive reuse, pipelining, partial and
// malformed request bytes, oversized-head 431, idle-timeout eviction,
// connection-table saturation, and stop() under load.
#include "obs/http.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace {

using procap::obs::HttpClient;
using procap::obs::HttpResponse;
using procap::obs::HttpServer;
using procap::obs::HttpServerOptions;
using procap::obs::http_get;
using procap::obs::parse_query;

/// Raw TCP connection to the server, for tests that need byte-level
/// control over what goes on the wire (pipelining, partial writes,
/// malformed requests) instead of the well-behaved clients.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool raw_send(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) {
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Read until `want` occurrences of `needle` arrived, EOF, or timeout.
std::string raw_read_until(int fd, const std::string& needle,
                           std::size_t want = 1, int timeout_ms = 2000) {
  std::string buffer;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (count_occurrences(buffer, needle) < want) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) {
      break;
    }
    char chunk[1024];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;  // EOF or error
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return buffer;
}

/// True when the peer closed: read() reports EOF within the timeout.
bool raw_at_eof(int fd, int timeout_ms = 2000) {
  pollfd pfd{fd, POLLIN, 0};
  if (::poll(&pfd, 1, timeout_ms) <= 0) {
    return false;
  }
  char chunk[64];
  return ::read(fd, chunk, sizeof(chunk)) == 0;
}

TEST(ObsHttp, ServesRegisteredHandlerOnEphemeralPort) {
  HttpServer server;
  server.handle("/ping", [](const std::string&) {
    return HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  ASSERT_GT(server.port(), 0);
  const auto result = http_get("127.0.0.1", server.port(), "/ping");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, 200);
  EXPECT_EQ(result->body, "pong\n");
  EXPECT_GE(server.requests_served(), 1u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ObsHttp, DispatchesByExactPathAndPassesQuery) {
  HttpServer server;
  std::string seen_query;
  server.handle("/a", [](const std::string&) {
    return HttpResponse{200, "text/plain", "handler-a"};
  });
  server.handle("/b", [&seen_query](const std::string& query) {
    seen_query = query;
    return HttpResponse{200, "text/plain", "handler-b"};
  });
  ASSERT_TRUE(server.start());
  const auto a = http_get("127.0.0.1", server.port(), "/a");
  const auto b = http_get("127.0.0.1", server.port(), "/b?since=5&x=1");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->body, "handler-a");
  EXPECT_EQ(b->body, "handler-b");
  EXPECT_EQ(seen_query, "since=5&x=1");
}

TEST(ObsHttp, UnknownPathIs404) {
  HttpServer server;
  server.handle("/known", [](const std::string&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_TRUE(server.start());
  const auto result = http_get("127.0.0.1", server.port(), "/unknown");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, 404);
  // Exact match: a prefix of a registered path is still unknown.
  const auto prefix = http_get("127.0.0.1", server.port(), "/kno");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->status, 404);
}

TEST(ObsHttp, SequentialAndConcurrentRequestsAllAnswered) {
  HttpServer server;
  std::atomic<int> calls{0};
  server.handle("/count", [&calls](const std::string&) {
    calls.fetch_add(1);
    return HttpResponse{200, "text/plain", "counted"};
  });
  ASSERT_TRUE(server.start());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto r = http_get("127.0.0.1", server.port(), "/count");
        if (r && r->status == 200) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(calls.load(), kThreads * kPerThread);
}

TEST(ObsHttp, ClientReportsFailureWhenNothingListens) {
  // Grab an ephemeral port, then close it so nothing is listening.
  std::uint16_t dead_port = 0;
  {
    HttpServer probe;
    ASSERT_TRUE(probe.start());
    dead_port = probe.port();
    probe.stop();
  }
  const auto result = http_get("127.0.0.1", dead_port, "/", 500);
  EXPECT_FALSE(result.has_value());
}

TEST(ObsHttp, KeepAliveClientReusesOneConnection) {
  HttpServer server;
  server.handle("/ping", [](const std::string&) {
    return HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  HttpClient client("127.0.0.1", server.port());
  constexpr int kRequests = 10;
  for (int i = 0; i < kRequests; ++i) {
    const auto r = client.get("/ping");
    ASSERT_TRUE(r.has_value()) << i;
    EXPECT_EQ(r->status, 200);
    EXPECT_EQ(r->body, "pong\n");
  }
  // The point of keep-alive: many requests, one accepted connection.
  EXPECT_EQ(server.connections_accepted(), 1u);
  EXPECT_GE(server.requests_served(), static_cast<std::uint64_t>(kRequests));
  client.close();
  server.stop();
}

TEST(ObsHttp, ConnectionCloseRequestIsHonored) {
  HttpServer server;
  server.handle("/ping", [](const std::string&) {
    return HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  const int fd = raw_connect(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_send(fd,
                       "GET /ping HTTP/1.1\r\nHost: t\r\n"
                       "Connection: close\r\n\r\n"));
  const std::string reply = raw_read_until(fd, "pong\n");
  EXPECT_NE(reply.find("HTTP/1.1 200"), std::string::npos) << reply;
  EXPECT_NE(reply.find("Connection: close"), std::string::npos) << reply;
  EXPECT_NE(reply.find("Content-Length: 5"), std::string::npos) << reply;
  // The server, not just the header, closes the connection.
  EXPECT_TRUE(raw_at_eof(fd));
  ::close(fd);
  server.stop();
}

TEST(ObsHttp, PipelinedRequestsAnsweredInOrder) {
  HttpServer server;
  server.handle("/a", [](const std::string&) {
    return HttpResponse{200, "text/plain", "handler-a"};
  });
  server.handle("/b", [](const std::string&) {
    return HttpResponse{200, "text/plain", "handler-b"};
  });
  ASSERT_TRUE(server.start());
  const int fd = raw_connect(server.port());
  ASSERT_GE(fd, 0);
  // Both requests in one write; two responses must come back, in order.
  ASSERT_TRUE(raw_send(fd,
                       "GET /a HTTP/1.1\r\nHost: t\r\n\r\n"
                       "GET /b HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string reply = raw_read_until(fd, "HTTP/1.1 200", 2);
  const std::size_t a = reply.find("handler-a");
  const std::size_t b = reply.find("handler-b");
  ASSERT_NE(a, std::string::npos) << reply;
  ASSERT_NE(b, std::string::npos) << reply;
  EXPECT_LT(a, b);
  ::close(fd);
  server.stop();
}

TEST(ObsHttp, PartialRequestBytesAssembleAcrossWrites) {
  HttpServer server;
  server.handle("/ping", [](const std::string&) {
    return HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  const int fd = raw_connect(server.port());
  ASSERT_GE(fd, 0);
  // The request trickles in over three writes; the per-connection state
  // machine must buffer until the head completes.
  for (const std::string chunk :
       {std::string("GET /pi"), std::string("ng HTTP/1.1\r\nHo"),
        std::string("st: t\r\n\r\n")}) {
    ASSERT_TRUE(raw_send(fd, chunk));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const std::string reply = raw_read_until(fd, "pong\n");
  EXPECT_NE(reply.find("HTTP/1.1 200"), std::string::npos) << reply;
  ::close(fd);
  server.stop();
}

TEST(ObsHttp, MalformedRequestLineAnswers400AndCloses) {
  HttpServer server;
  ASSERT_TRUE(server.start());
  const int fd = raw_connect(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_send(fd, "this is not http\r\n\r\n"));
  const std::string reply = raw_read_until(fd, "bad request\n");
  EXPECT_NE(reply.find("HTTP/1.1 400"), std::string::npos) << reply;
  EXPECT_NE(reply.find("Content-Length: 12"), std::string::npos) << reply;
  EXPECT_TRUE(raw_at_eof(fd));
  ::close(fd);
  server.stop();
}

TEST(ObsHttp, NonGetAnswers405WithAllowAndKeepsConnection) {
  HttpServer server;
  server.handle("/ping", [](const std::string&) {
    return HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  const int fd = raw_connect(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_send(fd, "POST /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string reply = raw_read_until(fd, "GET only\n");
  EXPECT_NE(reply.find("HTTP/1.1 405"), std::string::npos) << reply;
  EXPECT_NE(reply.find("Allow: GET"), std::string::npos) << reply;
  EXPECT_NE(reply.find("Content-Length: 9"), std::string::npos) << reply;
  // 405 is an answer, not a hangup: the connection still serves GETs.
  ASSERT_TRUE(raw_send(fd, "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string next = raw_read_until(fd, "pong\n");
  EXPECT_NE(next.find("HTTP/1.1 200"), std::string::npos) << next;
  ::close(fd);
  server.stop();
}

TEST(ObsHttp, OversizedRequestHeadAnswers431) {
  HttpServerOptions options;
  options.max_request_bytes = 256;
  HttpServer server(options);
  ASSERT_TRUE(server.start());
  const int fd = raw_connect(server.port());
  ASSERT_GE(fd, 0);
  // A head that keeps growing past the limit without ever terminating.
  std::string head = "GET /ping HTTP/1.1\r\nX-Pad: ";
  head.append(1024, 'x');
  ASSERT_TRUE(raw_send(fd, head));
  const std::string reply = raw_read_until(fd, "request head too large\n");
  EXPECT_NE(reply.find("HTTP/1.1 431"), std::string::npos) << reply;
  EXPECT_TRUE(raw_at_eof(fd));
  ::close(fd);
  server.stop();
}

TEST(ObsHttp, CompleteOversizedHeadAlsoAnswers431) {
  HttpServerOptions options;
  options.max_request_bytes = 256;
  HttpServer server(options);
  ASSERT_TRUE(server.start());
  const int fd = raw_connect(server.port());
  ASSERT_GE(fd, 0);
  // The whole head, terminator included, lands in one write; the size
  // limit must still apply or it is no limit for well-formed clients.
  std::string head = "GET /ping HTTP/1.1\r\nX-Pad: ";
  head.append(1024, 'x');
  head += "\r\n\r\n";
  ASSERT_TRUE(raw_send(fd, head));
  const std::string reply = raw_read_until(fd, "request head too large\n");
  EXPECT_NE(reply.find("HTTP/1.1 431"), std::string::npos) << reply;
  EXPECT_TRUE(raw_at_eof(fd));
  ::close(fd);
  server.stop();
}

TEST(ObsHttp, IdleConnectionsAreEvicted) {
  HttpServerOptions options;
  options.idle_timeout_ms = 100;
  HttpServer server(options);
  server.handle("/ping", [](const std::string&) {
    return HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  const int fd = raw_connect(server.port());
  ASSERT_GE(fd, 0);
  // Connected but silent: the idle timer must reclaim the slot.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server.idle_evictions() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.idle_evictions(), 1u);
  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_TRUE(raw_at_eof(fd));
  ::close(fd);
  server.stop();
}

TEST(ObsHttp, SaturatedConnectionTableAnswers503ThenRecovers) {
  HttpServerOptions options;
  options.max_connections = 2;
  HttpServer server(options);
  server.handle("/ping", [](const std::string&) {
    return HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  // Fill the table with two established keep-alive connections.
  HttpClient first("127.0.0.1", server.port());
  HttpClient second("127.0.0.1", server.port());
  ASSERT_TRUE(first.get("/ping").has_value());
  ASSERT_TRUE(second.get("/ping").has_value());
  // The third arrival is answered 503, not silently dropped.
  const auto rejected = http_get("127.0.0.1", server.port(), "/ping");
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->status, 503);
  EXPECT_EQ(rejected->body, "connection table full\n");
  EXPECT_GE(server.connections_rejected(), 1u);
  // Freeing a slot recovers the table.
  first.close();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  bool recovered = false;
  while (!recovered && std::chrono::steady_clock::now() < deadline) {
    const auto r = http_get("127.0.0.1", server.port(), "/ping");
    recovered = r.has_value() && r->status == 200;
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(recovered);
  second.close();
  server.stop();
}

TEST(ObsHttp, StopUnderLoadShutsDownCleanly) {
  HttpServer server;
  server.handle("/ping", [](const std::string&) {
    return HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  const std::uint16_t port = server.port();
  std::atomic<bool> done{false};
  std::atomic<int> ok{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&] {
      // Failures after stop() are expected; hangs and crashes are not.
      while (!done.load()) {
        const auto r = http_get("127.0.0.1", port, "/ping", 500);
        if (r && r->status == 200) {
          ok.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.stop();
  done.store(true);
  for (auto& t : scrapers) {
    t.join();
  }
  EXPECT_FALSE(server.running());
  EXPECT_GT(ok.load(), 0);
}

TEST(ObsHttp, ParseQueryDecodesPairs) {
  EXPECT_TRUE(parse_query("").empty());
  const auto q = parse_query("a=1&b=x%20y&c=1+2&flag");
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q.at("a"), "1");
  EXPECT_EQ(q.at("b"), "x y");
  EXPECT_EQ(q.at("c"), "1 2");
  EXPECT_EQ(q.at("flag"), "");
  // Repeated keys keep the last value.
  EXPECT_EQ(parse_query("k=1&k=2").at("k"), "2");
}

TEST(ObsHttp, StopIsIdempotentAndServerRestartable) {
  HttpServer server;
  server.handle("/x", [](const std::string&) {
    return HttpResponse{200, "text/plain", "x"};
  });
  ASSERT_TRUE(server.start());
  server.stop();
  server.stop();  // no-op
  ASSERT_TRUE(server.start());
  const auto r = http_get("127.0.0.1", server.port(), "/x");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  server.stop();
}

}  // namespace
