// Tests for the mini message-passing runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "minimpi/minimpi.hpp"

namespace procap::minimpi {
namespace {

TEST(MiniMpi, RanksSeeCorrectIdentity) {
  std::vector<std::atomic<int>> seen(8);
  run_world(8, [&](RankCtx& ctx) {
    EXPECT_EQ(ctx.size(), 8);
    seen[static_cast<std::size_t>(ctx.rank())].store(1);
  });
  for (const auto& s : seen) {
    EXPECT_EQ(s.load(), 1);
  }
}

TEST(MiniMpi, RejectsNonPositiveSize) {
  EXPECT_THROW(run_world(0, [](RankCtx&) {}), std::invalid_argument);
}

TEST(MiniMpi, BarrierSynchronizes) {
  constexpr int kRanks = 6;
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  run_world(kRanks, [&](RankCtx& ctx) {
    for (int iter = 0; iter < 20; ++iter) {
      before.fetch_add(1);
      ctx.barrier();
      // After the barrier, every rank must have incremented this round.
      if (before.load() < (iter + 1) * kRanks) {
        violated.store(true);
      }
      ctx.barrier();
    }
  });
  EXPECT_FALSE(violated.load());
}

TEST(MiniMpi, SendRecvPointToPoint) {
  run_world(2, [](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 7, "hello");
      EXPECT_EQ(ctx.recv(1, 8), "world");
    } else {
      EXPECT_EQ(ctx.recv(0, 7), "hello");
      ctx.send(0, 8, "world");
    }
  });
}

TEST(MiniMpi, TagsKeepMessagesApart) {
  run_world(2, [](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 1, "tag-one");
      ctx.send(1, 2, "tag-two");
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(ctx.recv(0, 2), "tag-two");
      EXPECT_EQ(ctx.recv(0, 1), "tag-one");
    }
  });
}

TEST(MiniMpi, SendToInvalidRankThrows) {
  EXPECT_THROW(
      run_world(2,
                [](RankCtx& ctx) {
                  if (ctx.rank() == 0) {
                    ctx.send(5, 0, "x");
                  }
                }),
      std::invalid_argument);
}

TEST(MiniMpi, BroadcastFromRoot) {
  run_world(5, [](RankCtx& ctx) {
    const double v = ctx.bcast(ctx.rank() == 2 ? 42.0 : -1.0, 2);
    EXPECT_DOUBLE_EQ(v, 42.0);
  });
}

TEST(MiniMpi, AllreduceSum) {
  constexpr int kRanks = 8;
  run_world(kRanks, [](RankCtx& ctx) {
    const double sum = ctx.allreduce(static_cast<double>(ctx.rank()), Op::kSum);
    EXPECT_DOUBLE_EQ(sum, 28.0);  // 0+1+...+7
  });
}

TEST(MiniMpi, AllreduceMinMax) {
  run_world(4, [](RankCtx& ctx) {
    const double v = 10.0 + ctx.rank();
    EXPECT_DOUBLE_EQ(ctx.allreduce(v, Op::kMin), 10.0);
    EXPECT_DOUBLE_EQ(ctx.allreduce(v, Op::kMax), 13.0);
  });
}

TEST(MiniMpi, RepeatedCollectivesStayConsistent) {
  run_world(4, [](RankCtx& ctx) {
    for (int i = 0; i < 50; ++i) {
      const double sum =
          ctx.allreduce(static_cast<double>(i), Op::kSum);
      EXPECT_DOUBLE_EQ(sum, 4.0 * i);
    }
  });
}

TEST(MiniMpi, WtimeAdvances) {
  run_world(2, [](RankCtx& ctx) {
    const Seconds a = ctx.wtime();
    ctx.barrier();
    const Seconds b = ctx.wtime();
    EXPECT_GE(b, a);
  });
}

TEST(MiniMpi, RankExceptionPropagates) {
  EXPECT_THROW(run_world(3,
                         [](RankCtx& ctx) {
                           if (ctx.rank() == 1) {
                             throw std::runtime_error("rank failure");
                           }
                         }),
               std::runtime_error);
}

}  // namespace
}  // namespace procap::minimpi
