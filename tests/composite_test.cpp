// Tests for composite progress (Category-3 applications) and the
// multi-component workload models.
#include <gtest/gtest.h>

#include "apps/multi.hpp"
#include "exp/rig.hpp"
#include "msgbus/bus.hpp"
#include "progress/analysis.hpp"
#include "progress/category.hpp"
#include "progress/composite.hpp"
#include "progress/reporter.hpp"

namespace procap {
namespace {

TEST(CompositeMonitor, ValidatesArguments) {
  ManualTimeSource clock;
  msgbus::Broker broker(clock);
  progress::CompositeMonitor composite(clock);
  EXPECT_THROW(composite.poll(), std::logic_error);  // no components
  EXPECT_THROW(composite.add_component(nullptr, 1.0, 1.0),
               std::invalid_argument);
  auto monitor = std::make_shared<progress::Monitor>(broker.make_sub(), "a",
                                                     clock);
  EXPECT_THROW(composite.add_component(monitor, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(composite.add_component(monitor, 1.0, 0.0),
               std::invalid_argument);
}

TEST(CompositeMonitor, WeightedNormalizedCombination) {
  ManualTimeSource clock;
  msgbus::Broker broker(clock);
  progress::Reporter fast(broker.make_pub(), {"fast", "u"});
  progress::Reporter slow(broker.make_pub(), {"slow", "u"});
  progress::CompositeMonitor composite(clock);
  composite.add_component(
      std::make_shared<progress::Monitor>(broker.make_sub(), "fast", clock),
      /*weight=*/0.75, /*nominal=*/30.0);
  composite.add_component(
      std::make_shared<progress::Monitor>(broker.make_sub(), "slow", clock),
      /*weight=*/0.25, /*nominal=*/0.5);

  // One second: fast reports 15 (half its nominal), slow reports 0.5
  // (exactly nominal).  All samples land strictly inside window [0, 1).
  for (int i = 0; i < 15; ++i) {
    clock.advance(to_nanos(0.06));
    fast.report(1.0);
  }
  clock.advance(to_nanos(0.05));
  slow.report(0.5);
  clock.advance(to_nanos(0.15));  // now 1.1 s: both windows closed
  composite.poll();
  // composite = 0.75 * 0.5 + 0.25 * 1.0 = 0.625.
  EXPECT_NEAR(composite.composite_rate(), 0.625, 1e-9);
  EXPECT_NEAR(composite.component_rate(0), 0.5, 1e-9);
  EXPECT_NEAR(composite.component_rate(1), 1.0, 1e-9);
  EXPECT_EQ(composite.rates().size(), 1U);
}

TEST(MultiApp, UrbanModelShape) {
  const auto model = apps::urban();
  ASSERT_EQ(model.components.size(), 2U);
  EXPECT_EQ(model.components[0].cores + model.components[1].cores, 24U);
  EXPECT_EQ(model.traits.name, "urban");
  EXPECT_EQ(progress::categorize(model.traits),
            progress::Category::kCategory3);
  // Timescales orders of magnitude apart.
  const Hertz f = hw::CpuSpec::skylake24().f_nominal;
  const double fast = apps::nominal_rate(model.components[0].spec, f);
  const double slow = apps::nominal_rate(model.components[1].spec, f);
  EXPECT_GT(fast / slow, 20.0);
}

TEST(MultiApp, LaunchRejectsOversizedAllotment) {
  exp::SimRig rig;
  auto model = apps::urban();
  model.components[0].cores = 20;
  model.components[1].cores = 20;
  EXPECT_THROW(apps::launch(model, rig.package(), rig.broker(), rig.time(),
                            hw::CpuSpec::skylake24().f_nominal),
               std::invalid_argument);
}

TEST(MultiApp, ComponentsRunConcurrentlyOnDisjointCores) {
  exp::SimRig rig;
  const auto model = apps::urban();
  auto instance = apps::launch(model, rig.package(), rig.broker(),
                               rig.time(), hw::CpuSpec::skylake24().f_nominal);
  rig.engine().every(kNanosPerSecond,
                     [&](Nanos) { instance.composite->poll(); });
  rig.engine().run_for(to_nanos(12.0));
  // Both components made progress at very different rates.
  EXPECT_GT(instance.apps[0]->iterations_completed(), 200);  // CFD ~30/s
  EXPECT_GT(instance.apps[1]->iterations_completed(), 3);    // EP ~0.5/s
  EXPECT_LT(instance.apps[1]->iterations_completed(), 12);
}

TEST(MultiApp, CompositeNearOneUncapped) {
  exp::SimRig rig;
  // Pin at nominal so measured rates match the nominal normalization.
  rig.rapl().set_frequency(hw::CpuSpec::skylake24().f_nominal);
  const auto model = apps::hacc();
  auto instance = apps::launch(model, rig.package(), rig.broker(),
                               rig.time(), hw::CpuSpec::skylake24().f_nominal);
  TimeSeries composite_series("c");
  rig.engine().every(kNanosPerSecond, [&](Nanos now) {
    instance.composite->poll();
    composite_series.add(now, instance.composite->composite_rate());
  });
  rig.engine().run_for(to_nanos(30.0));
  const double mean = composite_series.mean_in(to_nanos(5.0), to_nanos(30.0));
  EXPECT_NEAR(mean, 1.0, 0.15);
}

TEST(MultiApp, CompositeFallsUnderDvfs) {
  auto run_at = [](Hertz f) {
    exp::SimRig rig;
    rig.rapl().set_frequency(f);
    const auto model = apps::hacc();
    auto instance = apps::launch(model, rig.package(), rig.broker(),
                                 rig.time(),
                                 hw::CpuSpec::skylake24().f_nominal);
    TimeSeries series("c");
    rig.engine().every(kNanosPerSecond, [&](Nanos now) {
      instance.composite->poll();
      series.add(now, instance.composite->composite_rate());
    });
    rig.engine().run_for(to_nanos(25.0));
    return series.mean_in(to_nanos(5.0), to_nanos(25.0));
  };
  const double at_nominal = run_at(hw::CpuSpec::skylake24().f_nominal);
  const double at_low = run_at(mhz(1600));
  EXPECT_LT(at_low, 0.75 * at_nominal);
  EXPECT_GT(at_low, 0.35 * at_nominal);  // not compute-only: beta < 1
}

TEST(MultiApp, SingleComponentMetricIsUnreliableButCompositeIsUsable) {
  // The paper's Category-3 argument, quantified: the CFD component's own
  // windowed rate is too noisy to be a progress metric (demoted to
  // Category 3), while the weighted composite has materially lower
  // variation.
  exp::SimRig rig;
  const auto model = apps::urban();
  auto instance = apps::launch(model, rig.package(), rig.broker(),
                               rig.time(), hw::CpuSpec::skylake24().f_nominal,
                               /*seed=*/9);
  TimeSeries composite_series("c");
  rig.engine().every(kNanosPerSecond, [&](Nanos now) {
    instance.composite->poll();
    composite_series.add(now, instance.composite->composite_rate());
  });
  rig.engine().run_for(to_nanos(60.0));

  const auto nek_rates = instance.monitors[0]->rates();
  const auto nek_report = progress::analyze_consistency(nek_rates, 0.10);
  const auto composite_report =
      progress::analyze_consistency(composite_series, 0.10);
  EXPECT_FALSE(nek_report.consistent);
  EXPECT_LT(composite_report.cv, nek_report.cv * 0.75);
  EXPECT_EQ(progress::categorize(model.traits, nek_rates, 0.12),
            progress::Category::kCategory3);
}

}  // namespace
}  // namespace procap
