// Golden-trace parity for the policy::Controller redesign.
//
// The committed CSVs under tests/data/controller_golden/ were generated
// from the legacy policy surfaces (CapSchedule::cap_at driving the
// daemon, the NRM's built-in kBudget/kProgressTarget loops) *before* the
// Controller API existed.  These tests rerun the identical scenarios
// through today's code — which routes every decision through a
// policy::Controller — and require the cap sequences to match bit for
// bit (textual %.17g equality, no tolerance).  A mismatch means the
// adapters are not faithful to the legacy behavior.
//
// Regenerate only after an *intentional* behavior change:
//   tests/data/regenerate_controller_golden.sh
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/measure.hpp"
#include "exp/rig.hpp"
#include "policy/nrm.hpp"
#include "policy/schedule_shapes.hpp"
#include "progress/monitor.hpp"
#include "util/series.hpp"

namespace procap::policy {
namespace {

std::string fmt(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Schedule shape sampled on a fixed grid: one row per 0.25 s over
// [0, 120] s; an empty cap cell means uncapped.
std::string schedule_csv(const CapSchedule& schedule) {
  std::ostringstream os;
  os << "t_seconds,cap_watts\n";
  for (int i = 0; i <= 480; ++i) {
    const Seconds t = 0.25 * i;
    const auto cap = schedule.cap_at(t);
    os << fmt(t) << "," << (cap ? fmt(*cap) : "") << "\n";
  }
  return os.str();
}

std::string series_csv(const TimeSeries& series) {
  std::ostringstream os;
  os << "t_ns," << series.name() << "\n";
  for (const auto& sample : series.samples()) {
    os << sample.t << "," << fmt(sample.value) << "\n";
  }
  return os.str();
}

// Compare `actual` against the committed golden, or rewrite the golden
// when PROCAP_REGEN_CONTROLLER_GOLDEN is set (regenerate script only).
void check_golden(const std::string& name, const std::string& actual) {
  const std::string path =
      std::string(PROCAP_TESTS_DIR) + "/data/controller_golden/" + name;
  if (std::getenv("PROCAP_REGEN_CONTROLLER_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream golden(path);
  ASSERT_TRUE(golden.is_open()) << "missing " << path
                                << " (run tests/data/"
                                   "regenerate_controller_golden.sh)";
  std::ostringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(actual, expected.str()) << name << " diverged from the legacy "
                                    << "cap sequence";
}

TEST(ControllerGolden, UncappedSchedule) {
  check_golden("schedule_uncapped.csv", schedule_csv(UncappedSchedule()));
}

TEST(ControllerGolden, ConstantSchedule) {
  check_golden("schedule_constant.csv", schedule_csv(ConstantCap(80.0, 5.0)));
}

TEST(ControllerGolden, LinearSchedule) {
  check_golden("schedule_linear.csv",
               schedule_csv(LinearDecreasingCap(150.0, 60.0, 2.0, 10.0)));
}

TEST(ControllerGolden, StepSchedule) {
  check_golden("schedule_step.csv",
               schedule_csv(StepCap(std::nullopt, 70.0, 15.0, 15.0)));
}

TEST(ControllerGolden, StepScheduleWithHigh) {
  check_golden("schedule_step_high.csv",
               schedule_csv(StepCap(Watts{120.0}, 70.0, 10.0, 10.0)));
}

TEST(ControllerGolden, JaggedSchedule) {
  check_golden("schedule_jagged.csv",
               schedule_csv(JaggedCap(150.0, 60.0, 20.0)));
}

// The daemon path: cap series of a full simulated run.  After the
// redesign this exercises ScheduleController end to end.
TEST(ControllerGolden, DaemonStepLammps) {
  exp::RunOptions options;
  options.duration = 60.0;
  options.seed = 3;
  const auto traces = exp::run_under_schedule(
      apps::by_name("lammps"),
      std::make_unique<StepCap>(std::nullopt, 70.0, 12.0, 12.0), options);
  check_golden("daemon_step_lammps.csv", series_csv(traces.cap));
}

TEST(ControllerGolden, DaemonLinearStream) {
  exp::RunOptions options;
  options.duration = 60.0;
  options.seed = 5;
  const auto traces = exp::run_under_schedule(
      apps::by_name("stream"),
      std::make_unique<LinearDecreasingCap>(150.0, 60.0, 2.0, 8.0), options);
  check_golden("daemon_linear_stream.csv", series_csv(traces.cap));
}

// The NRM path: a scripted mode tour (uncapped -> hard budget ->
// progress target -> budget -> uncapped) under a node-budget ceiling.
// After the redesign kBudget/kProgressTarget delegate to
// BudgetController/ProgressTargetController.
TEST(ControllerGolden, NrmModeTour) {
  exp::SimRig rig;
  auto app = apps::by_name("lammps");
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 2);
  progress::Monitor monitor(rig.broker().make_sub(), "lammps", rig.time());
  NodeResourceManager nrm(rig.rapl(), monitor, rig.time());
  nrm.attach(rig.engine());

  nrm.set_node_budget(140.0);
  rig.engine().run_for(to_nanos(5.0));

  nrm.set_power_budget(90.0);
  rig.engine().run_for(to_nanos(10.0));

  model::ModelParams params;
  params.beta = 1.0;
  params.alpha = 2.0;
  params.p_core_max = 149.0;
  params.r_max = 800000.0;
  nrm.set_progress_target(0.75 * params.r_max, params);
  rig.engine().run_for(to_nanos(30.0));

  nrm.set_power_budget(70.0);
  rig.engine().run_for(to_nanos(5.0));

  nrm.clear_power_budget();
  rig.engine().run_for(to_nanos(5.0));

  check_golden("nrm_mode_tour_caps.csv", series_csv(nrm.cap_series()));
  check_golden("nrm_mode_tour_modes.csv", series_csv(nrm.mode_series()));
}

}  // namespace
}  // namespace procap::policy
