// Tests for consistency analysis, phase detection and categorization.
#include <gtest/gtest.h>

#include "apps/suite.hpp"
#include "progress/analysis.hpp"
#include "progress/category.hpp"
#include "util/rng.hpp"

namespace procap::progress {
namespace {

TimeSeries make_rates(const std::vector<double>& values) {
  TimeSeries s("rate");
  for (std::size_t i = 0; i < values.size(); ++i) {
    s.add(static_cast<Nanos>(i) * kNanosPerSecond, values[i]);
  }
  return s;
}

TEST(Consistency, SteadySeriesIsConsistent) {
  std::vector<double> v(30, 1080.0);
  const auto report = analyze_consistency(make_rates(v));
  EXPECT_TRUE(report.consistent);
  EXPECT_NEAR(report.mean_rate, 1080.0, 1e-9);
  EXPECT_NEAR(report.cv, 0.0, 1e-12);
}

TEST(Consistency, NoisySeriesIsInconsistent) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 50; ++i) {
    v.push_back(10.0 + 5.0 * rng.normal());
  }
  const auto report = analyze_consistency(make_rates(v), 0.10);
  EXPECT_FALSE(report.consistent);
  EXPECT_GT(report.cv, 0.2);
}

TEST(Consistency, WarmupWindowsExcluded) {
  std::vector<double> v{0.0, 100.0, 5.0, 5.0, 5.0, 5.0, 5.0};
  const auto report = analyze_consistency(make_rates(v), 0.10, 2);
  EXPECT_TRUE(report.consistent);
  EXPECT_NEAR(report.mean_rate, 5.0, 1e-9);
}

TEST(Consistency, ZeroWindowsTrackedSeparately) {
  std::vector<double> v{5.0, 0.0, 5.0, 0.0, 5.0, 5.0};
  const auto report = analyze_consistency(make_rates(v), 0.10, 0);
  EXPECT_NEAR(report.zero_fraction, 2.0 / 6.0, 1e-12);
  EXPECT_TRUE(report.consistent);  // zeros excluded from cv
}

TEST(PhaseDetection, SinglePhaseSingleSegment) {
  std::vector<double> v(20, 16.0);
  const auto segments = detect_phases(make_rates(v));
  ASSERT_EQ(segments.size(), 1U);
  EXPECT_NEAR(segments[0].mean_rate, 16.0, 1e-9);
  EXPECT_EQ(segments[0].windows, 20U);
}

TEST(PhaseDetection, ThreePhasesDetected) {
  // QMCPACK-like: 30, 24, 16 blocks/s.
  std::vector<double> v;
  for (int i = 0; i < 10; ++i) v.push_back(30.0);
  for (int i = 0; i < 10; ++i) v.push_back(24.0);  // hmm: only 20% drop
  for (int i = 0; i < 12; ++i) v.push_back(16.0);
  const auto segments = detect_phases(make_rates(v), 0.15, 3);
  ASSERT_EQ(segments.size(), 3U);
  EXPECT_NEAR(segments[0].mean_rate, 30.0, 0.5);
  EXPECT_NEAR(segments[1].mean_rate, 24.0, 0.5);
  EXPECT_NEAR(segments[2].mean_rate, 16.0, 0.5);
}

TEST(PhaseDetection, BlipsDoNotSplitSegments) {
  std::vector<double> v(20, 10.0);
  v[7] = 20.0;   // one-window spike
  v[13] = 3.0;   // one-window dip
  const auto segments = detect_phases(make_rates(v), 0.25, 3);
  EXPECT_EQ(segments.size(), 1U);
}

TEST(PhaseDetection, ZeroWindowsIgnored) {
  std::vector<double> v(20, 10.0);
  v[5] = 0.0;
  v[6] = 0.0;
  v[7] = 0.0;
  const auto segments = detect_phases(make_rates(v), 0.25, 3);
  EXPECT_EQ(segments.size(), 1U);
}

TEST(PhaseDetection, EmptySeriesNoSegments) {
  EXPECT_TRUE(detect_phases(make_rates({})).empty());
  EXPECT_TRUE(detect_phases(make_rates({0.0, 0.0})).empty());
}

TEST(Categorize, TraitsOnlyMatchesPaperTableV) {
  using enum Category;
  for (const auto& traits : apps::interview_traits()) {
    const Category c = categorize(traits);
    if (traits.name == "qmcpack" || traits.name == "openmc" ||
        traits.name == "lammps" || traits.name == "stream") {
      EXPECT_EQ(c, kCategory1) << traits.name;
    } else if (traits.name == "amg" || traits.name == "candle") {
      EXPECT_EQ(c, kCategory2) << traits.name;
    } else {
      EXPECT_EQ(c, kCategory3) << traits.name;
    }
  }
}

TEST(Categorize, UnstableTraceDemotesToCategory3) {
  auto traits = apps::interview_traits().front();  // qmcpack: Category 1
  Rng rng(5);
  std::vector<double> v;
  for (int i = 0; i < 40; ++i) {
    v.push_back(std::max(0.1, 10.0 + 8.0 * rng.normal()));
  }
  EXPECT_EQ(categorize(traits, make_rates(v)), Category::kCategory3);
}

TEST(Categorize, StableTraceKeepsCategory) {
  auto traits = apps::interview_traits().front();
  std::vector<double> v(30, 16.0);
  EXPECT_EQ(categorize(traits, make_rates(v)), Category::kCategory1);
}

TEST(Categorize, PhasedTraceIsNotPenalized) {
  auto traits = apps::interview_traits().front();
  std::vector<double> v;
  for (int i = 0; i < 10; ++i) v.push_back(30.0);
  for (int i = 0; i < 10; ++i) v.push_back(16.0);
  EXPECT_EQ(categorize(traits, make_rates(v)), Category::kCategory1);
}

TEST(Categorize, ShortTraceFallsBackToTraits) {
  auto traits = apps::interview_traits().front();
  std::vector<double> v{1.0, 100.0};
  EXPECT_EQ(categorize(traits, make_rates(v)), Category::kCategory1);
}

TEST(CategoryNames, ToString) {
  EXPECT_EQ(to_string(Category::kCategory1), "Category 1");
  EXPECT_EQ(to_string(Category::kCategory3), "Category 3");
}

}  // namespace
}  // namespace procap::progress
