// Cluster power hierarchy unit tests: redistribution strategies, the
// heartbeat failure detector, and the ClusterPowerManager's robustness
// contract — conservation, reclamation, suspect freeze, alert holds and
// thread-count-invariant determinism.  The 256-node chaos scenario lives
// in cluster_chaos_test.cpp.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "cluster/manager.hpp"
#include "cluster/membership.hpp"
#include "cluster/strategy.hpp"
#include "msgbus/bus.hpp"
#include "obs/alert.hpp"
#include "util/time.hpp"

namespace procap::cluster {
namespace {

// ------------------------------------------------------- strategies --

CapBounds bounds(Watts lo = 30.0, Watts hi = 205.0) { return {lo, hi}; }

NodeView view(unsigned id, Watts demand, double rate = 0.0,
              double nominal = 0.0, int priority = 0) {
  NodeView v;
  v.id = id;
  v.demand = demand;
  v.rate = rate;
  v.nominal_rate = nominal;
  v.priority = priority;
  return v;
}

double sum(const std::vector<Watts>& caps) {
  double total = 0.0;
  for (const Watts c : caps) {
    total += c;
  }
  return total;
}

TEST(ClusterStrategy, MakeStrategyKnowsExactlyTheAdvertisedNames) {
  for (const std::string& name : strategy_names()) {
    EXPECT_EQ(make_strategy(name)->name(), name);
  }
  EXPECT_THROW((void)make_strategy("bogus"), std::invalid_argument);
  EXPECT_THROW((void)make_strategy(""), std::invalid_argument);
}

TEST(ClusterStrategy, UniformSplitsEvenly) {
  const std::vector<NodeView> nodes = {view(0, 150), view(1, 80),
                                       view(2, 10), view(3, 200)};
  std::vector<Watts> caps;
  make_strategy("uniform")->distribute(nodes, 400.0, bounds(), caps);
  ASSERT_EQ(caps.size(), 4u);
  for (const Watts c : caps) {
    EXPECT_NEAR(c, 100.0, 1e-9);
  }
}

TEST(ClusterStrategy, CeilingCapsEveryNodeUnderAmpleBudget) {
  const std::vector<NodeView> nodes = {view(0, 300), view(1, 300)};
  std::vector<Watts> caps;
  make_strategy("demand")->distribute(nodes, 10000.0, bounds(), caps);
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_DOUBLE_EQ(caps[0], 205.0);
  EXPECT_DOUBLE_EQ(caps[1], 205.0);
}

TEST(ClusterStrategy, DemandProportionalFavorsTheHungrierNode) {
  const std::vector<NodeView> nodes = {view(0, 50.0), view(1, 150.0)};
  std::vector<Watts> caps;
  make_strategy("demand")->distribute(nodes, 160.0, bounds(0.0, 205.0),
                                      caps);
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_GT(caps[1], caps[0]);
  EXPECT_LE(sum(caps), 160.0 + 1e-9);
}

TEST(ClusterStrategy, ProgressAwareSteersWattsTowardBehindSchedule) {
  // Node 0: high-priority job at 10% of its nominal rate (far behind).
  // Node 1: low-priority job on track.  Same demand either way.
  const std::vector<NodeView> nodes = {view(0, 150, 10.0, 100.0, 4),
                                       view(1, 150, 100.0, 100.0, 1)};
  std::vector<Watts> caps;
  make_strategy("progress")->distribute(nodes, 200.0, bounds(0.0, 205.0),
                                        caps);
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_GT(caps[0], caps[1]);
  EXPECT_LE(sum(caps), 200.0 + 1e-9);
}

TEST(ClusterStrategy, FloorsShrinkInsteadOfOverCommitting) {
  // 10 nodes x 30 W floor = 300 W of floors against an 100 W budget: the
  // floor must shrink to budget / n, never push the sum past the budget.
  std::vector<NodeView> nodes;
  for (unsigned i = 0; i < 10; ++i) {
    nodes.push_back(view(i, 150));
  }
  for (const char* name : {"uniform", "demand", "progress"}) {
    std::vector<Watts> caps;
    make_strategy(name)->distribute(nodes, 100.0, bounds(), caps);
    ASSERT_EQ(caps.size(), 10u) << name;
    EXPECT_LE(sum(caps), 100.0 + 1e-9) << name;
    for (const Watts c : caps) {
      EXPECT_GT(c, 0.0) << name;
    }
  }
}

TEST(ClusterStrategy, EmptyClusterYieldsEmptyCaps) {
  std::vector<Watts> caps = {1.0, 2.0};
  make_strategy("uniform")->distribute({}, 100.0, bounds(), caps);
  EXPECT_TRUE(caps.empty());
}

// -------------------------------------------------- failure detector --

MembershipConfig timeouts() {
  MembershipConfig config;
  config.suspect_after = 3 * kNanosPerSecond;
  config.dead_after = 8 * kNanosPerSecond;
  return config;
}

TEST(FailureDetectorTest, RejectsNonsensicalTimeouts) {
  MembershipConfig zero;
  zero.suspect_after = 0;
  EXPECT_THROW(FailureDetector(2, zero, 0), std::invalid_argument);
  MembershipConfig inverted;
  inverted.suspect_after = 8 * kNanosPerSecond;
  inverted.dead_after = 3 * kNanosPerSecond;
  EXPECT_THROW(FailureDetector(2, inverted, 0), std::invalid_argument);
  MembershipConfig equal;
  equal.suspect_after = equal.dead_after = 3 * kNanosPerSecond;
  EXPECT_THROW(FailureDetector(2, equal, 0), std::invalid_argument);
}

TEST(FailureDetectorTest, ClimbsTheLivenessLadderAsHeartbeatsAge) {
  FailureDetector detector(2, timeouts(), 0);
  EXPECT_EQ(detector.alive(), 2u);

  EXPECT_TRUE(detector.advance(2 * kNanosPerSecond).empty());

  const auto at3 = detector.advance(3 * kNanosPerSecond);
  EXPECT_EQ(at3.suspected, (std::vector<unsigned>{0, 1}));
  EXPECT_EQ(detector.suspect(), 2u);

  const auto at8 = detector.advance(8 * kNanosPerSecond);
  EXPECT_EQ(at8.died, (std::vector<unsigned>{0, 1}));
  EXPECT_EQ(detector.dead(), 2u);
  EXPECT_EQ(detector.alive(), 0u);
}

TEST(FailureDetectorTest, HeartbeatRecoversASuspect) {
  FailureDetector detector(2, timeouts(), 0);
  detector.heartbeat(0, 2 * kNanosPerSecond);
  const auto at4 = detector.advance(4 * kNanosPerSecond);
  EXPECT_EQ(at4.suspected, (std::vector<unsigned>{1}));
  EXPECT_EQ(detector.liveness(0), Liveness::kAlive);

  detector.heartbeat(0, 5 * kNanosPerSecond);
  detector.heartbeat(1, 5 * kNanosPerSecond);
  const auto at5 = detector.advance(5 * kNanosPerSecond);
  EXPECT_EQ(at5.recovered, (std::vector<unsigned>{1}));
  EXPECT_EQ(detector.alive(), 2u);
}

TEST(FailureDetectorTest, DeadStaysDeadUntilAFreshHeartbeatRejoins) {
  FailureDetector detector(1, timeouts(), 0);
  (void)detector.advance(8 * kNanosPerSecond);
  ASSERT_EQ(detector.liveness(0), Liveness::kDead);

  // More advances must not demote dead back to suspect.
  EXPECT_TRUE(detector.advance(9 * kNanosPerSecond).empty());
  EXPECT_EQ(detector.liveness(0), Liveness::kDead);

  detector.heartbeat(0, 10 * kNanosPerSecond);
  const auto events = detector.advance(10 * kNanosPerSecond);
  EXPECT_EQ(events.rejoined, (std::vector<unsigned>{0}));
  EXPECT_EQ(detector.liveness(0), Liveness::kAlive);
}

TEST(FailureDetectorTest, ForceDeadSticksWithoutHeartbeats) {
  FailureDetector detector(2, timeouts(), 0);
  detector.force_dead(0, kNanosPerSecond);
  EXPECT_EQ(detector.liveness(0), Liveness::kDead);
  // The kill must survive advance(): a forced-dead node has no fresh
  // heartbeat to resurrect it.
  EXPECT_TRUE(detector.advance(kNanosPerSecond + 1).empty());
  EXPECT_EQ(detector.liveness(0), Liveness::kDead);
  detector.heartbeat(0, 2 * kNanosPerSecond);
  const auto events = detector.advance(2 * kNanosPerSecond);
  EXPECT_EQ(events.rejoined, (std::vector<unsigned>{0}));
}

TEST(FailureDetectorTest, AddedNodeStartsAliveWithAFullGraceWindow) {
  FailureDetector detector(1, timeouts(), 0);
  const unsigned id = detector.add_node(10 * kNanosPerSecond);
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(detector.size(), 2u);
  EXPECT_EQ(detector.liveness(1), Liveness::kAlive);
  // Node 0's heartbeat is 12 s stale; node 1's only 2 s.
  const auto events = detector.advance(12 * kNanosPerSecond);
  EXPECT_EQ(events.died, (std::vector<unsigned>{0}));
  EXPECT_EQ(detector.liveness(1), Liveness::kAlive);
}

// ----------------------------------------------------- manager core --

fault::FaultPlan plan_of(const std::string& text) {
  std::istringstream is(text);
  return fault::FaultPlan::parse(is);
}

ClusterConfig small_config(unsigned nodes = 16) {
  ClusterConfig config;
  config.nodes = nodes;
  config.global_budget = 120.0 * nodes;
  config.jobs = nodes / 4;
  config.seed = 7;
  config.threads = 1;
  return config;
}

TEST(ClusterManagerTest, RejectsNonsensicalConfigs) {
  {
    ClusterConfig c = small_config();
    c.nodes = 0;
    EXPECT_THROW(ClusterPowerManager{c}, std::invalid_argument);
  }
  {
    ClusterConfig c = small_config();
    c.global_budget = 0.0;
    EXPECT_THROW(ClusterPowerManager{c}, std::invalid_argument);
  }
  {
    ClusterConfig c = small_config();
    c.ticks_per_epoch = 0;
    EXPECT_THROW(ClusterPowerManager{c}, std::invalid_argument);
  }
  {
    ClusterConfig c = small_config();
    c.min_node_cap = 300.0;  // > max_node_cap
    EXPECT_THROW(ClusterPowerManager{c}, std::invalid_argument);
  }
  {
    ClusterConfig c = small_config();
    c.strategy = "bogus";
    EXPECT_THROW(ClusterPowerManager{c}, std::invalid_argument);
  }
}

TEST(ClusterManagerTest, ConservesBudgetUnderChurnForEveryStrategy) {
  for (const std::string& strategy : strategy_names()) {
    ClusterConfig config = small_config();
    config.strategy = strategy;
    config.plan = plan_of(
        "seed 3\n"
        "node 2 10 crash frac 0.2\n"
        "node 3 9  hbloss frac 0.1\n"
        "node 0 inf slow frac 0.2 factor 0.5\n");
    ClusterPowerManager manager(config);
    manager.run(15);
    for (const EpochRecord& rec : manager.records()) {
      EXPECT_LE(rec.assigned, config.global_budget + 1e-6)
          << strategy << " epoch " << rec.epoch;
    }
    EXPECT_EQ(manager.invariant_violations(), 0u) << strategy;
    EXPECT_GT(manager.deaths(), 0u) << strategy;
  }
}

TEST(ClusterManagerTest, ReclaimsADeadNodesCapInTheDetectionEpoch) {
  ClusterConfig config = small_config();
  config.plan = plan_of("node 2 inf crash id 5\n");
  ClusterPowerManager manager(config);

  bool death_seen = false;
  for (unsigned e = 0; e < 15 && !death_seen; ++e) {
    const EpochRecord& rec = manager.run_epoch();
    if (rec.dead > 0) {
      death_seen = true;
      // The reclaim happens in the same epoch the detector declares the
      // death, before redistribution — never a stale cap on a dead node.
      EXPECT_EQ(manager.liveness(5), Liveness::kDead);
      EXPECT_DOUBLE_EQ(manager.caps()[5], 0.0);
      EXPECT_GT(rec.reclaimed, 0.0);
    }
  }
  EXPECT_TRUE(death_seen);
  EXPECT_EQ(manager.deaths(), 1u);
  EXPECT_EQ(manager.invariant_violations(), 0u);
}

TEST(ClusterManagerTest, FreezesASuspectNodesShareUntilItRecovers) {
  ClusterConfig config = small_config();
  config.plan = plan_of("node 2 7 hbloss id 3\n");
  ClusterPowerManager manager(config);

  // Heartbeats from node 3 stop at t = 2 s; with the default 3 s suspect
  // timeout the node turns suspect at the t = 5 s epoch boundary.
  manager.run(5);
  ASSERT_EQ(manager.liveness(3), Liveness::kSuspect);
  const Watts frozen = manager.caps()[3];
  EXPECT_GT(frozen, 0.0);

  // While suspect, redistribution must not touch the frozen share.
  manager.run(1);
  ASSERT_EQ(manager.liveness(3), Liveness::kSuspect);
  EXPECT_DOUBLE_EQ(manager.caps()[3], frozen);

  // The episode ends at t = 7 s; fresh heartbeats recover the node well
  // before the 8 s death timeout — a blip never costs the node its
  // budget share.
  manager.run(3);
  EXPECT_EQ(manager.liveness(3), Liveness::kAlive);
  EXPECT_EQ(manager.deaths(), 0u);
  EXPECT_EQ(manager.invariant_violations(), 0u);
}

TEST(ClusterManagerTest, CrashedNodeRejoinsWhenItsEpisodeEnds) {
  ClusterConfig config = small_config();
  config.plan = plan_of("node 2 12 crash id 4\n");
  ClusterPowerManager manager(config);

  manager.run(15);
  EXPECT_EQ(manager.deaths(), 1u);
  EXPECT_EQ(manager.rejoins(), 1u);
  EXPECT_EQ(manager.liveness(4), Liveness::kAlive);
  // Re-integrated: the rejoined node is back in the division.
  EXPECT_GT(manager.caps()[4], 0.0);
  EXPECT_EQ(manager.invariant_violations(), 0u);
}

TEST(ClusterManagerTest, AllocationTraceIsThreadCountInvariant) {
  const auto trace = [](unsigned threads) {
    ClusterConfig config = small_config(32);
    config.threads = threads;
    config.plan = plan_of(
        "seed 9\n"
        "node 2 8  crash frac 0.15\n"
        "node 3 10 hbloss frac 0.1\n");
    ClusterPowerManager manager(config);
    manager.run(12);
    return manager.trace_hash();
  };
  const std::uint64_t serial = trace(1);
  EXPECT_EQ(serial, trace(4));
  EXPECT_EQ(serial, trace(3));
}

TEST(ClusterManagerTest, SeedChangesTheTrace) {
  const auto trace = [](std::uint64_t seed) {
    ClusterConfig config = small_config();
    config.seed = seed;
    ClusterPowerManager manager(config);
    manager.run(6);
    return manager.trace_hash();
  };
  EXPECT_EQ(trace(7), trace(7));
  EXPECT_NE(trace(7), trace(8));
}

TEST(ClusterManagerTest, DegradingAlertHoldsAllocationWithHysteresis) {
  ManualTimeSource clock;
  msgbus::Broker broker(clock);

  ClusterConfig config = small_config();
  config.reengage_epochs = 3;
  ClusterPowerManager manager(config);
  manager.watch_alerts(broker.make_sub());
  auto pub = broker.make_pub();

  manager.run(3);
  ASSERT_FALSE(manager.held());
  const std::vector<Watts> safe = manager.caps();

  obs::AlertTransition fire;
  fire.rule = "telemetry_absent";
  fire.severity = "critical";
  fire.from = obs::AlertState::kPending;
  fire.to = obs::AlertState::kFiring;
  fire.degrades_control = true;
  pub->publish(msgbus::alert_topic(fire.rule), fire.to_json());

  const EpochRecord& held = manager.run_epoch();
  EXPECT_TRUE(held.held);
  EXPECT_TRUE(manager.held());
  EXPECT_EQ(manager.holds(), 1u);
  // The cluster sits in its last safe allocation, bit for bit.
  EXPECT_EQ(manager.caps(), safe);

  // Still held while the alert fires.
  manager.run(1);
  EXPECT_TRUE(manager.held());
  EXPECT_EQ(manager.caps(), safe);
  EXPECT_EQ(manager.holds(), 1u);  // one hold episode, not one per epoch

  obs::AlertTransition resolve = fire;
  resolve.from = obs::AlertState::kFiring;
  resolve.to = obs::AlertState::kInactive;
  pub->publish(msgbus::alert_topic(resolve.rule), resolve.to_json());

  // Hysteresis: the hold lifts only after reengage_epochs quiet epochs.
  EXPECT_TRUE(manager.run_epoch().held);
  EXPECT_TRUE(manager.run_epoch().held);
  EXPECT_FALSE(manager.run_epoch().held);
  EXPECT_FALSE(manager.held());
  EXPECT_EQ(manager.invariant_violations(), 0u);
}

TEST(ClusterManagerTest, BenignAlertsDoNotHold) {
  ManualTimeSource clock;
  msgbus::Broker broker(clock);
  ClusterPowerManager manager(small_config());
  manager.watch_alerts(broker.make_sub());
  auto pub = broker.make_pub();

  obs::AlertTransition fire;
  fire.rule = "cap_effect_slo";
  fire.severity = "warning";
  fire.from = obs::AlertState::kPending;
  fire.to = obs::AlertState::kFiring;
  fire.degrades_control = false;  // advisory only
  pub->publish(msgbus::alert_topic(fire.rule), fire.to_json());
  pub->publish(msgbus::alert_topic("junk"), "{not json");

  EXPECT_FALSE(manager.run_epoch().held);
  EXPECT_EQ(manager.holds(), 0u);
}

// --------------------------------------------------- join and leave --

TEST(ClusterManagerTest, JoinedNodeEntersTheDivisionNextEpoch) {
  ClusterPowerManager manager(small_config(8));
  manager.run(2);
  const unsigned id = manager.add_node();
  EXPECT_EQ(id, 8u);
  EXPECT_EQ(manager.node_count(), 9u);
  EXPECT_DOUBLE_EQ(manager.caps()[id], 0.0);  // nothing until the epoch

  manager.run(1);
  EXPECT_EQ(manager.liveness(id), Liveness::kAlive);
  EXPECT_GT(manager.caps()[id], 0.0);
  EXPECT_LE(manager.assigned(), manager.config().global_budget + 1e-6);
}

TEST(ClusterManagerTest, RemovedNodeStaysGoneAndItsShareIsReclaimed) {
  ClusterPowerManager manager(small_config(8));
  manager.run(2);
  ASSERT_GT(manager.caps()[2], 0.0);

  manager.remove_node(2);
  EXPECT_DOUBLE_EQ(manager.caps()[2], 0.0);
  EXPECT_EQ(manager.liveness(2), Liveness::kDead);
  manager.remove_node(2);  // idempotent

  manager.run(6);
  // A left node no longer steps, so it never heartbeats its way back.
  EXPECT_EQ(manager.liveness(2), Liveness::kDead);
  EXPECT_DOUBLE_EQ(manager.caps()[2], 0.0);
  EXPECT_EQ(manager.rejoins(), 0u);
  EXPECT_LE(manager.assigned(), manager.config().global_budget + 1e-6);

  EXPECT_THROW(manager.remove_node(99), std::out_of_range);
}

}  // namespace
}  // namespace procap::cluster
