// Chaos suite (ctest label: chaos): end-to-end fault scenarios driving
// the full stack — simulated app, lossy msgbus link, injected MSR
// failures, health-aware NRM, and the power-policy daemon.  The
// acceptance properties from the robustness issue live here:
//
//   * under 30 % report drop plus a 2 s burst outage plus transient MSR
//     EIO, the NRM enters degraded mode within two monitoring windows,
//     never programs a cap above the node budget, and re-engages
//     closed-loop control after the faults clear;
//   * the zero-window classifier labels outage-emptied windows kDropped
//     on the lossy link and never labels kDropped on a clean link;
//   * a chaos run is bit-reproducible from the fault plan seed;
//   * the daemon survives RAPL EIO streaks with backoff and counts
//     scheduler stalls via the missed-tick watchdog.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/rig.hpp"
#include "fault/injectors.hpp"
#include "fault/plan.hpp"
#include "model/progress_model.hpp"
#include "policy/daemon.hpp"
#include "policy/nrm.hpp"
#include "policy/schedule_shapes.hpp"
#include "progress/health.hpp"
#include "progress/monitor.hpp"

namespace procap {
namespace {

using policy::NodeResourceManager;
using Mode = NodeResourceManager::Mode;

model::ModelParams lammps_params() {
  model::ModelParams params;
  params.beta = 1.0;
  params.alpha = 2.0;
  params.p_core_max = 149.0;
  params.r_max = 800000.0;
  return params;
}

fault::FaultPlan chaos_plan() {
  std::istringstream is(
      "seed 4242\n"
      "link 20 30  drop 0.3\n"
      "link 30 32  outage\n"
      "msr  20 30  read_fail 0.3 write_fail 0.3 reg 0x610\n");
  return fault::FaultPlan::parse(is);
}

constexpr Watts kNodeBudget = 120.0;

// Everything observable about one chaos run, for reproducibility checks.
struct ChaosRun {
  std::vector<Nanos> cap_times;
  std::vector<double> cap_values;
  std::vector<double> mode_values;
  std::vector<NodeResourceManager::ModeEvent> events;
  std::vector<progress::WindowVerdict> verdicts;
  fault::LinkFaultStats link_stats;
  fault::MsrFaultStats msr_stats;
  std::uint64_t degraded_entries = 0;
  std::uint64_t reengagements = 0;
  Mode final_mode = Mode::kUncapped;
  double late_rate = 0.0;  // mean measured rate over the recovery tail
};

ChaosRun run_chaos_scenario() {
  const fault::FaultPlan plan = chaos_plan();
  exp::SimRig rig;
  auto app = apps::lammps();
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 1);

  // Progress reports reach the monitor over the faulty link; RAPL
  // accesses go through the faulty MSR device.
  auto link_injector = std::make_shared<fault::LinkFaultInjector>(plan);
  msgbus::LinkOptions link;
  link.fault = link_injector;
  fault::MsrFaultInjector msr_injector(plan, rig.time());
  msr_injector.install(rig.node().msr());

  progress::Monitor monitor(rig.broker().make_sub(link), "lammps",
                            rig.time());
  NodeResourceManager nrm(rig.rapl(), monitor, rig.time());
  nrm.attach(rig.engine());
  nrm.set_node_budget(kNodeBudget);
  nrm.set_progress_target(0.6 * lammps_params().r_max, lammps_params());

  rig.engine().run_for(to_nanos(48.0));
  rig.node().msr().set_fault_hook({});  // injector dies before the rig

  ChaosRun out;
  for (const auto& s : nrm.cap_series().samples()) {
    out.cap_times.push_back(s.t);
    out.cap_values.push_back(s.value);
  }
  for (const auto& s : nrm.mode_series().samples()) {
    out.mode_values.push_back(s.value);
  }
  out.events = nrm.mode_events();
  out.verdicts = monitor.verdicts();
  out.link_stats = link_injector->stats();
  out.msr_stats = msr_injector.stats();
  out.degraded_entries = nrm.degraded_entries();
  out.reengagements = nrm.reengagements();
  out.final_mode = nrm.mode();
  out.late_rate = nrm.progress_series().mean_in(to_nanos(40.0),
                                               to_nanos(48.0));
  return out;
}

TEST(Chaos, NrmSurvivesLossAndOutageWithinBudget) {
  const ChaosRun run = run_chaos_scenario();

  // The faults actually fired: the drop phase and the outage discarded
  // reports, and the scoped MSR episode produced EIOs or swallowed none
  // (probabilistic per actuation, but drops are certain in the outage).
  EXPECT_GT(run.link_stats.dropped, 0U);
  EXPECT_GT(run.link_stats.outage_dropped, 0U);

  // Invariant: no programmed cap ever exceeded the node budget, and the
  // controller was never running uncapped (cap 0 is the uncapped
  // sentinel in the series).
  ASSERT_FALSE(run.cap_values.empty());
  for (std::size_t i = 0; i < run.cap_values.size(); ++i) {
    EXPECT_GT(run.cap_values[i], 0.0) << "uncapped at tick " << i;
    EXPECT_LE(run.cap_values[i], kNodeBudget + 1e-9)
        << "budget exceeded at tick " << i;
  }

  // Degraded within two monitoring windows of the burst outage: the
  // outage runs [30 s, 32 s), so by the t = 32 s tick the controller
  // must have fallen back to open-loop control.
  ASSERT_EQ(run.cap_times.size(), run.mode_values.size());
  bool checked = false;
  for (std::size_t i = 0; i < run.cap_times.size(); ++i) {
    if (run.cap_times[i] == to_nanos(32.0)) {
      EXPECT_EQ(run.mode_values[i], static_cast<double>(Mode::kDegraded));
      checked = true;
    }
  }
  EXPECT_TRUE(checked) << "no tick recorded at t = 32 s";
  EXPECT_GE(run.degraded_entries, 1U);

  // After the faults clear the signal heals and the loop re-engages
  // (hysteresis: three consecutive healthy ticks), and stays engaged.
  EXPECT_GE(run.reengagements, 1U);
  EXPECT_EQ(run.final_mode, Mode::kProgressTarget);

  // Re-converged: the recovery tail tracks the progress target again.
  const double target = 0.6 * lammps_params().r_max;
  EXPECT_NEAR(run.late_rate, target, 0.20 * target);
}

TEST(Chaos, ScenarioIsBitReproducibleFromPlanSeed) {
  const ChaosRun a = run_chaos_scenario();
  const ChaosRun b = run_chaos_scenario();
  EXPECT_EQ(a.cap_times, b.cap_times);
  EXPECT_EQ(a.cap_values, b.cap_values);
  EXPECT_EQ(a.mode_values, b.mode_values);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.link_stats, b.link_stats);
  EXPECT_EQ(a.msr_stats, b.msr_stats);
  EXPECT_EQ(a.degraded_entries, b.degraded_entries);
  EXPECT_EQ(a.reengagements, b.reengagements);
  EXPECT_DOUBLE_EQ(a.late_rate, b.late_rate);
}

// Classifier accuracy: run one application into two monitors — one over
// a clean link, one over a link with scripted outages and random drops.
// Every window the lossy monitor saw as zero while the clean monitor saw
// progress was emptied by injected loss, and must be labelled kDropped.
// The clean monitor must never label kDropped.
TEST(Chaos, ClassifierSeparatesDroppedFromTrueZero) {
  std::istringstream is(
      "seed 99\n"
      "link 0 inf  drop 0.2\n"
      "link 5 8    outage\n"
      "link 12 16  outage\n"
      "link 20 22  outage\n");
  const fault::FaultPlan plan = fault::FaultPlan::parse(is);

  exp::SimRig rig;
  auto app = apps::lammps();
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 1);

  progress::Monitor clean(rig.broker().make_sub(), "lammps", rig.time());
  auto injector = std::make_shared<fault::LinkFaultInjector>(plan);
  msgbus::LinkOptions link;
  link.fault = injector;
  progress::Monitor lossy(rig.broker().make_sub(link), "lammps", rig.time());

  rig.engine().every(kNanosPerSecond, [&](Nanos) {
    clean.poll();
    lossy.poll();
  });
  rig.engine().run_for(to_nanos(30.0));

  // Ground truth: windows zeroed on the lossy link while the clean link
  // proved the application was progressing.
  const auto& clean_v = clean.verdicts();
  const auto& lossy_v = lossy.verdicts();
  ASSERT_FALSE(lossy_v.empty());
  std::uint64_t injected_zero = 0;
  std::uint64_t labelled_dropped = 0;
  for (const auto& v : lossy_v) {
    if (v.rate != 0.0) {
      continue;
    }
    for (const auto& c : clean_v) {
      if (c.start == v.start && c.rate > 0.0) {
        ++injected_zero;
        if (v.label == progress::WindowLabel::kDropped) {
          ++labelled_dropped;
        }
        break;
      }
    }
  }
  // The three outages (3 s + 4 s + 2 s) must have emptied several
  // windows, and >= 90 % of them must carry the kDropped label.
  ASSERT_GE(injected_zero, 5U);
  EXPECT_GE(static_cast<double>(labelled_dropped),
            0.9 * static_cast<double>(injected_zero));

  // Zero false positives on the clean link.
  EXPECT_EQ(clean.classifier().dropped_windows(), 0U);
  for (const auto& v : clean_v) {
    EXPECT_NE(v.label, progress::WindowLabel::kDropped);
  }
}

// Daemon backoff: a certain-EIO episode on the package-energy register
// makes every power read in [5 s, 9 s) fail.  With a 1.5 s initial
// backoff the daemon alternates attempt/skip through the episode, then
// recovers cleanly — and never stops recording its cap series.
TEST(Chaos, DaemonBacksOffThroughEioStreakAndRecovers) {
  std::istringstream is(
      "seed 7\n"
      "msr 5 9 read_fail 1.0 reg 0x611\n");
  const fault::FaultPlan plan = fault::FaultPlan::parse(is);

  exp::SimRig rig;
  auto app = apps::lammps();
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 1);
  fault::MsrFaultInjector injector(plan, rig.time());
  injector.install(rig.node().msr());

  policy::DaemonConfig config;
  config.backoff_initial = msec(1500);
  config.backoff_max = 2 * kNanosPerSecond;
  policy::PowerPolicyDaemon daemon(
      rig.rapl(), rig.time(),
      std::make_unique<policy::ConstantCap>(90.0, 2.0), 0, config);
  daemon.attach(rig.engine());
  rig.engine().run_for(to_nanos(12.0));
  rig.node().msr().set_fault_hook({});  // injector dies before the rig

  // Ticks at 5 s and 7 s fail (EIO certain); 6 s and 8 s land inside
  // the 1.5 s / 2 s backoff windows and are skipped; 9 s succeeds.
  EXPECT_EQ(daemon.read_failures(), 2U);
  EXPECT_EQ(daemon.backoff_skips(), 2U);
  EXPECT_EQ(daemon.recoveries(), 1U);
  EXPECT_EQ(daemon.consecutive_failures(), 0U);
  EXPECT_FALSE(daemon.backing_off());

  // The cap survived the streak and the series never lost a tick.
  EXPECT_EQ(daemon.ticks(), 12U);
  EXPECT_EQ(daemon.cap_series().size(), 12U);
  ASSERT_TRUE(daemon.current_cap().has_value());
  EXPECT_DOUBLE_EQ(*daemon.current_cap(), 90.0);
  EXPECT_NEAR(rig.package().firmware().limit().pl1.power, 90.0, 0.125);
}

// Watchdog: ticks driven by hand with a stalled interval in the middle.
TEST(Chaos, DaemonWatchdogCountsMissedIntervals) {
  exp::SimRig rig;
  policy::PowerPolicyDaemon daemon(
      rig.rapl(), rig.time(), std::make_unique<policy::UncappedSchedule>());
  daemon.set_tick_interval(kNanosPerSecond);

  rig.engine().run_for(kNanosPerSecond);
  daemon.tick();
  rig.engine().run_for(kNanosPerSecond);
  daemon.tick();
  EXPECT_EQ(daemon.missed_ticks(), 0U);

  // The timer loop wedges for 3.5 s: two whole intervals went missing.
  rig.engine().run_for(to_nanos(3.5));
  daemon.tick();
  EXPECT_EQ(daemon.missed_ticks(), 2U);

  // Back on cadence: no further counts.
  rig.engine().run_for(kNanosPerSecond);
  daemon.tick();
  EXPECT_EQ(daemon.missed_ticks(), 2U);
}

}  // namespace
}  // namespace procap
