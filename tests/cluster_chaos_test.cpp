// Cluster chaos suite: 256 nodes, a scripted plan that kills 10% of the
// cluster mid-run, crashes another 5% temporarily and silences the
// heartbeats of 5% more — the acceptance scenario for the cluster power
// hierarchy's robustness contract:
//
//   (a) conservation — sum(assigned caps) never exceeds the global
//       budget at any epoch;
//   (b) reclamation — every node the detector declares dead has its cap
//       zeroed within that same epoch (checked after every epoch, not
//       just at the end);
//   (c) re-integration — nodes whose fault episodes end rejoin and
//       return to the division with a live share;
//   (d) determinism — the chained allocation-trace hash is bit-identical
//       across reruns with the same seed and thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "cluster/manager.hpp"

namespace procap::cluster {
namespace {

constexpr unsigned kNodes = 256;
constexpr unsigned kEpochs = 30;

ClusterConfig chaos_config(unsigned threads) {
  ClusterConfig config;
  config.nodes = kNodes;
  config.global_budget = 120.0 * kNodes;
  config.jobs = kNodes / 8;
  config.seed = 1337;
  config.threads = threads;
  // 10% of the cluster dies for good at t = 5 s; 5% crashes at t = 6 s
  // and rejoins at t = 18 s; 5% stops heartbeating over [8 s, 20 s) —
  // long enough to be declared (falsely) dead and later rejoin; 10%
  // runs slow throughout.
  std::istringstream plan(
      "seed 99\n"
      "node 5 inf crash frac 0.10\n"
      "node 6 18  crash frac 0.05\n"
      "node 8 20  hbloss frac 0.05\n"
      "node 0 inf slow frac 0.10 factor 0.6\n");
  config.plan = fault::FaultPlan::parse(plan);
  return config;
}

struct RunResult {
  std::uint64_t trace_hash = 0;
  std::uint64_t deaths = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t violations = 0;
  unsigned final_alive = 0;
  unsigned final_dead = 0;
  double total_reclaimed = 0.0;
};

/// One full chaos run, asserting the per-epoch invariants as it goes.
/// Out-parameter because ASSERT_* needs a void-returning function.
void run_chaos(unsigned threads, RunResult& out) {
  const ClusterConfig config = chaos_config(threads);
  ClusterPowerManager manager(config);

  for (unsigned e = 0; e < kEpochs; ++e) {
    const EpochRecord& rec = manager.run_epoch();

    // (a) conservation, at every epoch, not just at the end.
    ASSERT_LE(rec.assigned, config.global_budget + 1e-6)
        << "over-committed at epoch " << rec.epoch;

    // (b) reclamation within the detection epoch: no node the detector
    // considers dead may still hold budget after the epoch's decisions.
    for (unsigned i = 0; i < manager.node_count(); ++i) {
      if (manager.liveness(i) == Liveness::kDead) {
        ASSERT_EQ(manager.caps()[i], 0.0)
            << "dead node " << i << " holds budget at epoch " << rec.epoch;
      }
    }

    // Accounting stays closed under churn.
    ASSERT_EQ(rec.alive + rec.suspect + rec.dead, manager.node_count());
  }

  out.trace_hash = manager.trace_hash();
  out.deaths = manager.deaths();
  out.rejoins = manager.rejoins();
  out.violations = manager.invariant_violations();
  const EpochRecord& last = manager.records().back();
  out.final_alive = last.alive;
  out.final_dead = last.dead;
  for (const EpochRecord& rec : manager.records()) {
    out.total_reclaimed += rec.reclaimed;
  }

  // (c) re-integration: by t = 30 s every non-permanent fault episode has
  // ended and its victims have rejoined — only the permanently crashed
  // group may still be dead, and every alive node holds a live share.
  ASSERT_FALSE(manager.config().plan.node.empty());
  EXPECT_LE(out.final_dead, static_cast<unsigned>(kNodes * 0.10 + 1));
  EXPECT_EQ(out.final_alive + out.final_dead,
            static_cast<unsigned>(kNodes));  // nobody left in limbo
  for (unsigned i = 0; i < manager.node_count(); ++i) {
    if (manager.liveness(i) == Liveness::kAlive) {
      EXPECT_GT(manager.caps()[i], 0.0) << "alive node " << i << " starved";
    }
  }
}

TEST(ClusterChaos, SurvivesKilling10PercentMidRun) {
  RunResult result;
  run_chaos(4, result);

  EXPECT_EQ(result.violations, 0u);

  // The permanent group alone is 10% of the cluster; the temporary
  // crash and heartbeat-loss groups die on top of it.
  EXPECT_GE(result.deaths, static_cast<std::uint64_t>(kNodes * 0.10));
  EXPECT_GT(result.total_reclaimed, 0.0);

  // (c) the temporary groups came back.
  EXPECT_GE(result.rejoins, 1u);
  EXPECT_GE(result.final_alive,
            static_cast<unsigned>(kNodes * 0.85));
}

TEST(ClusterChaos, RerunsAreBitIdenticalUnderAFixedSeed) {
  // (d) same seed, same thread count => the same allocation trace, bit
  // for bit, epoch for epoch — chaos included.
  RunResult first, second, serial;
  run_chaos(4, first);
  run_chaos(4, second);
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.deaths, second.deaths);
  EXPECT_EQ(first.rejoins, second.rejoins);

  // And the trace is also invariant to how the node stepping is sharded.
  run_chaos(1, serial);
  EXPECT_EQ(first.trace_hash, serial.trace_hash);
}

}  // namespace
}  // namespace procap::cluster
