// Tests for the OpenMP-like work-sharing runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "minithread/minithread.hpp"

namespace procap::minithread {
namespace {

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  for (const auto schedule : {ThreadPool::Schedule::kStatic,
                              ThreadPool::Schedule::kDynamic}) {
    constexpr std::size_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); },
                      schedule);
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, ZeroIterationsIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_DOUBLE_EQ(pool.parallel_reduce(0, [](std::size_t) { return 1.0; }),
                   0.0);
}

TEST(ThreadPool, PoolIsReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.parallel_for(50, [&](std::size_t) { total.fetch_add(1); },
                      ThreadPool::Schedule::kDynamic, 7);
  }
  EXPECT_EQ(total.load(), 200 * 50);
}

TEST(ThreadPool, ReduceMatchesSerialSum) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 5000;
  double serial = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    serial += std::sqrt(static_cast<double>(i));
  }
  const double parallel = pool.parallel_reduce(
      kN, [](std::size_t i) { return std::sqrt(static_cast<double>(i)); });
  // Chunked combination order differs from the serial loop's, so expect
  // agreement to rounding, not bit-exactness (bit-exactness across *runs*
  // is covered by the determinism test below).
  EXPECT_NEAR(parallel, serial, 1e-9 * serial);
}

TEST(ThreadPool, ReduceIsDeterministicUnderDynamicScheduling) {
  // Floating-point sums depend on combination order; ours is fixed by
  // chunk index, so repeated runs agree bit-for-bit.
  ThreadPool pool(4);
  constexpr std::size_t kN = 20000;
  auto body = [](std::size_t i) {
    return 1.0 / (1.0 + static_cast<double>(i));
  };
  const double first =
      pool.parallel_reduce(kN, body, ThreadPool::Schedule::kDynamic, 13);
  for (int run = 0; run < 10; ++run) {
    EXPECT_DOUBLE_EQ(pool.parallel_reduce(
                         kN, body, ThreadPool::Schedule::kDynamic, 13),
                     first);
  }
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [](std::size_t i) {
                          if (i == 337) {
                            throw std::runtime_error("iteration failure");
                          }
                        },
                        ThreadPool::Schedule::kDynamic, 1),
      std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolStillSharesWithCaller) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(1000, [&](std::size_t) { count.fetch_add(1); },
                    ThreadPool::Schedule::kDynamic, 10);
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ChunkLargerThanRangeWorks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(5, [&](std::size_t) { count.fetch_add(1); },
                    ThreadPool::Schedule::kDynamic, 1000);
  EXPECT_EQ(count.load(), 5);
}

}  // namespace
}  // namespace procap::minithread
