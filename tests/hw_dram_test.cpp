// Tests for the DRAM RAPL domain: metering, MSR wiring, and
// bandwidth-throttling enforcement.
#include <gtest/gtest.h>

#include "exp/rig.hpp"
#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "hw/node.hpp"
#include "progress/monitor.hpp"
#include "rapl/rapl.hpp"
#include "util/time.hpp"

namespace procap::hw {
namespace {

TEST(DramDomain, IdleDramPowerIsStatic) {
  Package pkg(CpuSpec::skylake24());
  for (Nanos t = 0; t < to_nanos(0.2); t += msec(1)) {
    pkg.step(t, msec(1));
  }
  EXPECT_NEAR(pkg.dram_power(), CpuSpec::skylake24().dram_static, 0.1);
}

TEST(DramDomain, DramPowerScalesWithBandwidth) {
  exp::SimRig rig;
  const auto model = apps::stream();
  apps::SimApp app(rig.package(), rig.broker(), model.spec, 1);
  rig.engine().run_for(to_nanos(2.0));
  // STREAM drives ~100 GB/s: dram ~ 3 + 0.30 * bw averages near 30 W.
  const Joules e = rig.package().dram_energy();
  EXPECT_GT(e / 2.0, 20.0);
  EXPECT_LT(e / 2.0, 45.0);
}

TEST(DramDomain, EnergyStatusMsrAndInterface) {
  exp::SimRig rig;
  const auto model = apps::stream();
  apps::SimApp app(rig.package(), rig.broker(), model.spec, 1);
  rig.engine().run_for(to_nanos(1.0));
  EXPECT_NEAR(rig.rapl().dram_energy(), rig.package().dram_energy(), 0.01);
  // The interface derives *mean* power from successive energy reads;
  // compare against the same mean computed from the package energy
  // directly (instantaneous dram_power() is bursty for STREAM).
  const Joules e0 = rig.package().dram_energy();
  (void)rig.rapl().dram_power();  // establish the measurement origin
  rig.engine().run_for(to_nanos(2.0));
  const Watts mean = (rig.package().dram_energy() - e0) / 2.0;
  EXPECT_NEAR(rig.rapl().dram_power(), mean, 0.5);
}

TEST(DramDomain, LimitRoundTripThroughMsr) {
  exp::SimRig rig;
  rig.rapl().set_dram_cap(22.0);
  const auto limit = rig.rapl().dram_limit();
  EXPECT_TRUE(limit.pl1.enabled);
  EXPECT_NEAR(limit.pl1.power, 22.0, 0.125);
  EXPECT_TRUE(rig.package().dram_firmware().enforcing());
  rig.rapl().clear_dram_cap();
  EXPECT_FALSE(rig.package().dram_firmware().enforcing());
  EXPECT_DOUBLE_EQ(rig.package().dram_firmware().throttle(), 1.0);
}

TEST(DramDomain, CapRejectsNonPositive) {
  exp::SimRig rig;
  EXPECT_THROW(rig.rapl().set_dram_cap(0.0), std::invalid_argument);
}

TEST(DramDomain, CapThrottlesMemoryBoundApp) {
  exp::SimRig rig;
  const auto model = apps::stream();
  apps::SimApp app(rig.package(), rig.broker(), model.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), "stream", rig.time());
  rig.engine().every(kNanosPerSecond, [&](Nanos) { monitor.poll(); });

  rig.engine().run_for(to_nanos(10.0));
  const double rate_uncapped = monitor.rates().mean_in(to_nanos(3.0),
                                                       to_nanos(10.0));
  // STREAM's uncapped DRAM power is ~33 W; cap at 18 W.
  rig.rapl().set_dram_cap(18.0);
  rig.engine().run_for(to_nanos(15.0));
  const double rate_capped = monitor.rates().mean_in(to_nanos(15.0),
                                                     to_nanos(25.0));
  EXPECT_LT(rig.package().memory_throttle(), 1.0);
  EXPECT_NEAR(rig.package().dram_firmware().running_average(), 18.0, 2.0);
  // Memory-bound progress collapses roughly with the bandwidth cut.
  EXPECT_LT(rate_capped, 0.75 * rate_uncapped);
}

TEST(DramDomain, CapBarelyAffectsComputeBoundApp) {
  exp::SimRig rig;
  const auto model = apps::lammps();
  apps::SimApp app(rig.package(), rig.broker(), model.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), "lammps", rig.time());
  rig.engine().every(kNanosPerSecond, [&](Nanos) { monitor.poll(); });

  rig.engine().run_for(to_nanos(10.0));
  const double rate_uncapped = monitor.rates().mean_in(to_nanos(3.0),
                                                       to_nanos(10.0));
  // LAMMPS's DRAM power is near the static floor; the same 18 W cap that
  // cripples STREAM does nothing here.
  rig.rapl().set_dram_cap(18.0);
  rig.engine().run_for(to_nanos(15.0));
  const double rate_capped = monitor.rates().mean_in(to_nanos(15.0),
                                                     to_nanos(25.0));
  EXPECT_GT(rate_capped, 0.97 * rate_uncapped);
}

TEST(DramDomain, FirmwareThrottleBounds) {
  CpuSpec spec = CpuSpec::skylake24();
  DramFirmware fw(spec);
  rapl::PkgPowerLimit limit;
  limit.pl1.power = 1.0;  // unreachable: static floor is 3 W
  limit.pl1.time_window = 0.04;
  limit.pl1.enabled = true;
  fw.program(limit);
  for (int i = 0; i < 5000; ++i) {
    fw.observe(30.0, msec(1));
  }
  EXPECT_GE(fw.throttle(), 1.0 / 16.0 - 1e-12);
  EXPECT_LT(fw.throttle(), 0.2);
}

}  // namespace
}  // namespace procap::hw
