#!/bin/sh
# Regenerate obs_golden_trace.json after an *intentional* change to the
# Chrome trace exporter's output format.  The canonical trace here must
# stay in sync with fill_canonical_trace() in tests/obs_trace_test.cpp.
set -e
root=$(cd "$(dirname "$0")/../.." && pwd)
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/gen.cpp" <<'EOF'
#include <iostream>
#include "obs/trace.hpp"
#include "util/units.hpp"

int main() {
  using procap::to_nanos;
  procap::obs::TraceCollector trace;
  trace.set_meta("app", "stream");
  trace.set_meta("scheme", "step");

  trace.daemon_tick(to_nanos(1.0), 1200.0);
  trace.cap_change(to_nanos(1.0), std::nullopt, 80.0, "step");
  trace.actuation(to_nanos(1.0), "set_cap", 80.0, true);
  trace.progress_window(to_nanos(1.0), to_nanos(2.0), 95.0, "stream");

  trace.daemon_tick(to_nanos(2.0), 900.0);
  trace.mode_change(to_nanos(2.0), "budget", "degraded", "stale telemetry");
  trace.mark(to_nanos(2.5), "phase:solve");

  trace.cap_change(to_nanos(3.0), 80.0, 110.0, "step");
  trace.actuation(to_nanos(3.0), "set_cap", 110.0, false);
  trace.cap_change(to_nanos(4.0), 80.0, 110.0, "step");
  trace.actuation(to_nanos(4.0), "set_cap", 110.0, true);
  trace.progress_window(to_nanos(4.0), to_nanos(5.0), 120.0, "stream");

  trace.write_chrome(std::cout);
  return 0;
}
EOF

c++ -std=c++20 -I "$root/src" "$tmp/gen.cpp" \
    "$root/src/obs/trace.cpp" "$root/src/obs/json.cpp" \
    "$root/src/obs/metrics.cpp" -o "$tmp/gen"
"$tmp/gen" > "$root/tests/data/obs_golden_trace.json"
echo "wrote $root/tests/data/obs_golden_trace.json"
