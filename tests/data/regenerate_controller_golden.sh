#!/bin/sh
# Regenerate the controller golden cap sequences after an *intentional*
# behavior change to the policy layer.  The goldens pin the legacy
# (pre-Controller) cap sequences; the parity tests in
# tests/controller_golden_test.cpp assert the Controller adapters
# reproduce them bit for bit, so rewriting these files is a deliberate
# re-baseline, not a fix.
#
# usage: tests/data/regenerate_controller_golden.sh [BUILD_DIR]
set -e
root=$(cd "$(dirname "$0")/../.." && pwd)
build=${1:-"$root/build"}

cmake --build "$build" --target controller_golden_test -j "$(nproc)"
PROCAP_REGEN_CONTROLLER_GOLDEN=1 \
  "$build/tests/controller_golden_test" \
  --gtest_filter='ControllerGolden.*'
echo "rewrote $root/tests/data/controller_golden/"
