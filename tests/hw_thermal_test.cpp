// Tests for the opt-in thermal model: RC dynamics, temperature-dependent
// leakage, PROCHOT throttling, the THERM_STATUS MSR, and the thermal-
// headroom effect of power capping.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/rig.hpp"
#include "hw/node.hpp"
#include "msr/addresses.hpp"

namespace procap::hw {
namespace {

NodeSpec thermal_node() {
  NodeSpec spec;
  spec.cpu.thermal_enabled = true;
  return spec;
}

void load_compute(Package& pkg) {
  for (unsigned c = 0; c < pkg.core_count(); ++c) {
    pkg.core(c).set_idle_callback([&pkg](unsigned core, Nanos) {
      pkg.core(core).push_compute(3.3e8, 3.3e8);
    });
  }
}

void run(Package& pkg, Seconds seconds) {
  for (Nanos t = 0; t < to_nanos(seconds); t += msec(1)) {
    pkg.step(t, msec(1));
  }
}

TEST(Thermal, DisabledByDefaultTemperatureStaysAmbient) {
  Package pkg(CpuSpec::skylake24());
  load_compute(pkg);
  run(pkg, 2.0);
  EXPECT_DOUBLE_EQ(pkg.temperature(), CpuSpec{}.t_ambient);
  EXPECT_FALSE(pkg.prochot_active());
  // Leakage untouched: core static is exactly nominal.
  EXPECT_DOUBLE_EQ(pkg.breakdown().core_static, 24 * 0.4);
}

TEST(Thermal, ApproachesSteadyStateWithTau) {
  CpuSpec spec = CpuSpec::skylake24();
  spec.thermal_enabled = true;
  Package pkg(spec);
  load_compute(pkg);
  // After one tau, ~63% of the way to steady state; after 5 tau, ~there.
  run(pkg, spec.thermal_tau);
  const double t_steady =
      spec.t_ambient + spec.thermal_resistance * pkg.power();
  const double progress_1tau =
      (pkg.temperature() - spec.t_ambient) / (t_steady - spec.t_ambient);
  EXPECT_NEAR(progress_1tau, 0.63, 0.06);
  run(pkg, 4.0 * spec.thermal_tau);
  EXPECT_NEAR(pkg.temperature(), t_steady, 1.0);
  // ~150 W at R = 0.25 C/W over 40 C ambient: ~78 C.
  EXPECT_NEAR(pkg.temperature(), 78.0, 3.0);
}

TEST(Thermal, LeakageGrowsWithTemperature) {
  CpuSpec spec = CpuSpec::skylake24();
  spec.thermal_enabled = true;
  Package pkg(spec);
  load_compute(pkg);
  run(pkg, 0.05);
  const Watts static_cold = pkg.breakdown().core_static;  // ~40 C
  run(pkg, 5.0 * spec.thermal_tau);
  const Watts static_hot = pkg.breakdown().core_static;  // ~78 C
  EXPECT_GT(static_hot, static_cold * 1.05);
  // 0.8%/C * ~38 C above cold, relative to the 70 C reference point.
  EXPECT_NEAR(static_hot / (24 * 0.4),
              1.0 + spec.leakage_temp_coeff * (pkg.temperature() - 70.0),
              0.02);
}

TEST(Thermal, ProchotClampsAndRecoversWithHysteresis) {
  CpuSpec spec = CpuSpec::skylake24();
  spec.thermal_enabled = true;
  spec.thermal_resistance = 0.45;  // undersized heatsink: 150 W -> ~108 C
  spec.thermal_tau = 1.0;          // fast, to keep the test short
  Package pkg(spec);
  load_compute(pkg);
  run(pkg, 6.0);
  // Tripped at some point: frequency clamped to f_min while hot.
  EXPECT_TRUE(pkg.temperature() < spec.t_prochot + 1.0);
  // The system self-regulates: at f_min power drops (~30 W -> ~53 C), so
  // PROCHOT oscillates; observe both states across a window.
  bool saw_clamp = false;
  bool saw_release = false;
  for (int i = 0; i < 20000; ++i) {
    pkg.step(to_nanos(6.0) + i * msec(1), msec(1));
    saw_clamp |= pkg.prochot_active() && pkg.frequency() == spec.f_min;
    saw_release |= !pkg.prochot_active() && pkg.frequency() > spec.f_min;
  }
  EXPECT_TRUE(saw_clamp);
  EXPECT_TRUE(saw_release);
}

TEST(Thermal, PowerCappingCreatesHeadroom) {
  // The Section VII (Bhalachandra) mechanism: a cap lowers the steady
  // temperature, cutting leakage — headroom a smarter policy could spend.
  auto steady_temp = [](std::optional<Watts> cap) {
    exp::SimRig rig(thermal_node());
    const auto model = apps::lammps();
    apps::SimApp app(rig.package(), rig.broker(), model.spec, 1);
    if (cap) {
      rig.rapl().set_pkg_cap(*cap);
    }
    rig.engine().run_for(to_nanos(60.0));
    return rig.package().temperature();
  };
  const double hot = steady_temp(std::nullopt);  // ~150 W
  const double capped = steady_temp(Watts{90.0});
  EXPECT_GT(hot, capped + 10.0);  // ~0.25 C/W * 60 W
}

TEST(Thermal, ThermStatusMsrReadsMarginAndProchot) {
  exp::SimRig rig(thermal_node());
  const auto model = apps::lammps();
  apps::SimApp app(rig.package(), rig.broker(), model.spec, 1);
  rig.engine().run_for(to_nanos(40.0));
  const std::uint64_t raw =
      rig.node().msr().read(0, msr::kIa32ThermStatus);
  const double margin = static_cast<double>((raw >> 16) & 0x7F);
  EXPECT_NEAR(margin, 100.0 - rig.package().temperature(), 1.0);
  EXPECT_EQ(raw & 1, 0U);  // not throttling at ~78 C
}

}  // namespace
}  // namespace procap::hw
