// Tests for the RAPL register codecs (Intel SDM layouts), including
// parameterized round-trip property sweeps.
#include <gtest/gtest.h>

#include "rapl/codec.hpp"

namespace procap::rapl {
namespace {

TEST(RaplUnits, SkylakeDefaults) {
  const RaplUnits u = RaplUnits::skylake();
  EXPECT_DOUBLE_EQ(u.power_unit, 0.125);
  EXPECT_DOUBLE_EQ(u.energy_unit, 1.0 / 16384.0);
  EXPECT_DOUBLE_EQ(u.time_unit, 1.0 / 1024.0);
}

TEST(RaplUnits, DecodeFieldPositions) {
  // power exp 3 (bits 3:0), energy exp 14 (bits 12:8), time exp 10
  // (bits 19:16).
  const std::uint64_t raw = 0x3 | (14ULL << 8) | (10ULL << 16);
  const RaplUnits u = RaplUnits::decode(raw);
  EXPECT_DOUBLE_EQ(u.power_unit, 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(u.energy_unit, 1.0 / 16384.0);
  EXPECT_DOUBLE_EQ(u.time_unit, 1.0 / 1024.0);
}

TEST(RaplUnits, EncodeDecodeRoundTrip) {
  const std::uint64_t raw = RaplUnits::encode(3, 16, 10);
  const RaplUnits u = RaplUnits::decode(raw);
  EXPECT_DOUBLE_EQ(u.energy_unit, 1.0 / 65536.0);  // Haswell-server style
}

TEST(RaplUnits, EncodeRejectsOutOfRange) {
  EXPECT_THROW((void)RaplUnits::encode(16, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)RaplUnits::encode(0, 32, 0), std::invalid_argument);
  EXPECT_THROW((void)RaplUnits::encode(0, 0, 16), std::invalid_argument);
}

TEST(PowerLimitCodec, EncodeKnownValue) {
  const RaplUnits u = RaplUnits::skylake();
  PkgPowerLimit limit;
  limit.pl1.power = 100.0;  // 800 power units
  limit.pl1.enabled = true;
  limit.pl1.clamped = true;
  limit.pl1.time_window = 0.0;
  const std::uint64_t raw = limit.encode(u);
  EXPECT_EQ(raw & 0x7FFF, 800U);
  EXPECT_NE(raw & (1ULL << 15), 0U);  // enable
  EXPECT_NE(raw & (1ULL << 16), 0U);  // clamp
  EXPECT_EQ(raw >> 32, 0U);           // PL2 untouched
}

TEST(PowerLimitCodec, LockBit) {
  const RaplUnits u = RaplUnits::skylake();
  PkgPowerLimit limit;
  limit.locked = true;
  EXPECT_NE(limit.encode(u) & (1ULL << 63), 0U);
  EXPECT_TRUE(PkgPowerLimit::decode(1ULL << 63, u).locked);
}

TEST(PowerLimitCodec, TimeWindowFormula) {
  const RaplUnits u = RaplUnits::skylake();
  // Y=3, Z=2 -> 2^3 * 1.5 * (1/1024) s = 11.71875 ms.
  const std::uint8_t bits = 3 | (2 << 5);
  EXPECT_DOUBLE_EQ(decode_time_window(bits, u), 12.0 / 1024.0);
}

TEST(PowerLimitCodec, TimeWindowZeroEncodesZero) {
  const RaplUnits u = RaplUnits::skylake();
  EXPECT_EQ(encode_time_window(0.0, u), 0);
  EXPECT_EQ(encode_time_window(-1.0, u), 0);
}

TEST(EnergyCodec, EncodeDecodeConsistent) {
  const RaplUnits u = RaplUnits::skylake();
  const Joules j = 1000.0;
  const std::uint32_t raw = encode_energy(j, u);
  EXPECT_NEAR(decode_energy(raw, u), j, u.energy_unit);
}

TEST(EnergyCodec, CounterWrapsAt32Bits) {
  const RaplUnits u = RaplUnits::skylake();
  // 2^32 energy units wrap to zero.
  const Joules wrap_point = 4294967296.0 * u.energy_unit;
  EXPECT_EQ(encode_energy(wrap_point, u), 0U);
  EXPECT_EQ(encode_energy(wrap_point + u.energy_unit, u), 1U);
}

TEST(EnergyAccumulator, AccumulatesDeltas) {
  const RaplUnits u = RaplUnits::skylake();
  EnergyAccumulator acc(u);
  EXPECT_DOUBLE_EQ(acc.sample(1000), 0.0);  // priming read
  const Joules d = acc.sample(3000);
  EXPECT_DOUBLE_EQ(d, 2000.0 * u.energy_unit);
  EXPECT_DOUBLE_EQ(acc.total(), 2000.0 * u.energy_unit);
}

TEST(EnergyAccumulator, HandlesWraparound) {
  const RaplUnits u = RaplUnits::skylake();
  EnergyAccumulator acc(u);
  acc.sample(0xFFFFFF00U);
  const Joules d = acc.sample(0x00000100U);  // wrapped by 0x200 units
  EXPECT_DOUBLE_EQ(d, 512.0 * u.energy_unit);
  EXPECT_EQ(acc.wraps(), 1U);
}

// ---- Parameterized round-trip properties ------------------------------

class PowerLimitRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(PowerLimitRoundTrip, PowerSurvivesEncodeDecode) {
  const RaplUnits u = RaplUnits::skylake();
  PkgPowerLimit in;
  in.pl1.power = GetParam();
  in.pl1.enabled = true;
  in.pl1.time_window = 0.01;
  in.pl2.power = GetParam() * 1.2;
  in.pl2.enabled = false;
  const PkgPowerLimit out = PkgPowerLimit::decode(in.encode(u), u);
  EXPECT_NEAR(out.pl1.power, in.pl1.power, u.power_unit / 2.0);
  EXPECT_NEAR(out.pl2.power, in.pl2.power, u.power_unit / 2.0);
  EXPECT_EQ(out.pl1.enabled, in.pl1.enabled);
  EXPECT_EQ(out.pl2.enabled, in.pl2.enabled);
}

INSTANTIATE_TEST_SUITE_P(CapSweep, PowerLimitRoundTrip,
                         ::testing::Values(10.0, 25.0, 40.0, 65.5, 80.0,
                                           100.0, 120.25, 150.0, 200.0,
                                           250.0));

class TimeWindowRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(TimeWindowRoundTrip, WindowWithinFloatGranularity) {
  const RaplUnits u = RaplUnits::skylake();
  const Seconds w = GetParam();
  const Seconds decoded = decode_time_window(encode_time_window(w, u), u);
  // (Y, Z) float granularity: consecutive representable values differ by
  // at most 25 %; encoding picks the closest, so error <= 12.5 % + 1 unit.
  EXPECT_NEAR(decoded, w, std::max(0.125 * w, u.time_unit));
}

INSTANTIATE_TEST_SUITE_P(WindowSweep, TimeWindowRoundTrip,
                         ::testing::Values(0.001, 0.00292, 0.01, 0.028, 0.1,
                                           0.25, 1.0, 2.5, 10.0));

class EnergyRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(EnergyRoundTrip, EnergyWithinOneUnit) {
  const RaplUnits u = RaplUnits::skylake();
  const Joules j = GetParam();
  EXPECT_NEAR(decode_energy(encode_energy(j, u), u), j, u.energy_unit);
}

INSTANTIATE_TEST_SUITE_P(EnergySweep, EnergyRoundTrip,
                         ::testing::Values(0.0, 0.001, 1.0, 42.0, 1234.5,
                                           100000.0, 262143.9));

}  // namespace
}  // namespace procap::rapl
