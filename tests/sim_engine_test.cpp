// Tests for the fixed-step simulation engine.
#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace procap::sim {
namespace {

class CountingComponent : public Component {
 public:
  void step(Nanos now, Nanos dt) override {
    steps.push_back(now);
    last_dt = dt;
  }
  std::vector<Nanos> steps;
  Nanos last_dt = 0;
};

TEST(Engine, RejectsNonPositiveDt) {
  EXPECT_THROW(Engine(0), std::invalid_argument);
  EXPECT_THROW(Engine(-5), std::invalid_argument);
}

TEST(Engine, RunForAdvancesClock) {
  Engine engine(msec(1));
  engine.run_for(msec(10));
  EXPECT_EQ(engine.now(), msec(10));
  EXPECT_EQ(engine.ticks(), 10U);
}

TEST(Engine, ComponentsSteppedEveryTick) {
  Engine engine(msec(2));
  CountingComponent c;
  engine.add(c);
  engine.run_for(msec(10));
  ASSERT_EQ(c.steps.size(), 5U);
  EXPECT_EQ(c.steps.front(), 0);
  EXPECT_EQ(c.steps.back(), msec(8));
  EXPECT_EQ(c.last_dt, msec(2));
}

TEST(Engine, ComponentsSteppedInRegistrationOrder) {
  Engine engine(msec(1));
  std::vector<int> order;
  struct Tagger : Component {
    Tagger(std::vector<int>& o, int id) : order(&o), id(id) {}
    void step(Nanos, Nanos) override { order->push_back(id); }
    std::vector<int>* order;
    int id;
  };
  Tagger a(order, 1);
  Tagger b(order, 2);
  engine.add(a);
  engine.add(b);
  engine.run_for(msec(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, OneShotEventFiresOnce) {
  Engine engine(msec(1));
  int fired = 0;
  Nanos fire_time = -1;
  engine.at(msec(5), [&](Nanos t) {
    ++fired;
    fire_time = t;
  });
  engine.run_for(msec(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(fire_time, msec(5));
}

TEST(Engine, AtRejectsPast) {
  Engine engine(msec(1));
  engine.run_for(msec(5));
  EXPECT_THROW(engine.at(msec(1), [](Nanos) {}), std::invalid_argument);
}

TEST(Engine, PeriodicEventFiresAtPeriod) {
  Engine engine(msec(1));
  std::vector<Nanos> fires;
  engine.every(msec(3), [&](Nanos t) { fires.push_back(t); });
  engine.run_for(msec(10));
  // Fires at 0, 3, 6, 9 ms.
  EXPECT_EQ(fires, (std::vector<Nanos>{0, msec(3), msec(6), msec(9)}));
}

TEST(Engine, PeriodicWithPhase) {
  Engine engine(msec(1));
  std::vector<Nanos> fires;
  engine.every(msec(4), [&](Nanos t) { fires.push_back(t); }, msec(2));
  engine.run_for(msec(11));
  EXPECT_EQ(fires, (std::vector<Nanos>{msec(2), msec(6), msec(10)}));
}

TEST(Engine, CancelStopsPeriodic) {
  Engine engine(msec(1));
  int fired = 0;
  const auto id = engine.every(msec(2), [&](Nanos) { ++fired; });
  engine.run_for(msec(5));  // fires at 0, 2, 4
  engine.cancel(id);
  engine.run_for(msec(10));
  EXPECT_EQ(fired, 3);
}

TEST(Engine, EventsBeforeComponents) {
  Engine engine(msec(1));
  CountingComponent c;
  engine.add(c);
  bool component_had_stepped_at_event = true;
  engine.at(0, [&](Nanos) {
    component_had_stepped_at_event = !c.steps.empty();
  });
  engine.run_for(msec(1));
  EXPECT_FALSE(component_had_stepped_at_event);
}

TEST(Engine, TieBreakIsFifo) {
  Engine engine(msec(1));
  std::vector<int> order;
  engine.at(msec(2), [&](Nanos) { order.push_back(1); });
  engine.at(msec(2), [&](Nanos) { order.push_back(2); });
  engine.run_for(msec(5));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, RunUntilStopsOnPredicate) {
  Engine engine(msec(1));
  int count = 0;
  engine.every(msec(1), [&](Nanos) { ++count; });
  const bool stopped =
      engine.run_until([&] { return count >= 5; }, to_nanos(1.0));
  EXPECT_TRUE(stopped);
  EXPECT_EQ(count, 5);
  EXPECT_LT(engine.now(), to_nanos(1.0));
}

TEST(Engine, RunUntilHonorsMaxDuration) {
  Engine engine(msec(1));
  const bool stopped = engine.run_until([] { return false; }, msec(20));
  EXPECT_FALSE(stopped);
  EXPECT_EQ(engine.now(), msec(20));
}

TEST(Engine, TimeSourceSharesClock) {
  Engine engine(msec(1));
  const TimeSource& ts = engine.time();
  engine.run_for(msec(7));
  EXPECT_EQ(ts.now(), msec(7));
}

TEST(Engine, EveryRejectsNonPositivePeriod) {
  Engine engine(msec(1));
  EXPECT_THROW(engine.every(0, [](Nanos) {}), std::invalid_argument);
}

#if !defined(PROCAP_OBS_DISABLED)
TEST(Engine, ShortRunsReportEveryTickOnDestruction) {
  // Runs far shorter than the batched flush cadence must still land in
  // the registry once the engine goes away (destructor flush).
  auto& ticks_total = obs::Registry::global().counter("sim.ticks");
  const std::uint64_t before = ticks_total.value();
  {
    Engine engine(msec(1));
    engine.run_for(msec(25));
  }
  EXPECT_GE(ticks_total.value() - before, 25u);
}
#endif

}  // namespace
}  // namespace procap::sim
