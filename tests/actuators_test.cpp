// Tests for the software power-limiting actuators (DVFS / DDCM feedback
// controllers) and the PowerLimiter abstraction.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/rig.hpp"
#include "policy/actuators.hpp"

namespace procap::policy {
namespace {

class ActuatorTest : public ::testing::Test {
 protected:
  ActuatorTest() : app_(apps::lammps()) {
    sim_app_ = std::make_unique<apps::SimApp>(rig_.package(), rig_.broker(),
                                              app_.spec, 1);
  }

  Watts settled_power(Seconds settle = 20.0, Seconds measure = 5.0) {
    rig_.engine().run_for(to_nanos(settle));
    const Joules e0 = rig_.package().energy();
    rig_.engine().run_for(to_nanos(measure));
    return (rig_.package().energy() - e0) / measure;
  }

  exp::SimRig rig_;
  apps::AppModel app_;
  std::unique_ptr<apps::SimApp> sim_app_;
};

TEST_F(ActuatorTest, DvfsHoldsReachableTarget) {
  DvfsPowerLimiter limiter(rig_.rapl());
  limiter.attach(rig_.engine());
  limiter.set_target(90.0);
  EXPECT_NEAR(settled_power(), 90.0, 4.0);
  EXPECT_LT(limiter.frequency(), 3.7e9);
}

TEST_F(ActuatorTest, DvfsBottomsOutAtFloor) {
  DvfsPowerLimiter limiter(rig_.rapl());
  limiter.attach(rig_.engine());
  limiter.set_target(10.0);  // below the DVFS-reachable floor (~29 W)
  rig_.engine().run_for(to_nanos(20.0));
  EXPECT_DOUBLE_EQ(limiter.frequency(), 1.2e9);
  EXPECT_GT(settled_power(1.0), 20.0);  // cannot reach 10 W
}

TEST_F(ActuatorTest, DvfsReleaseRestoresMax) {
  DvfsPowerLimiter limiter(rig_.rapl());
  limiter.attach(rig_.engine());
  limiter.set_target(70.0);
  rig_.engine().run_for(to_nanos(20.0));
  ASSERT_LT(limiter.frequency(), 3.0e9);
  limiter.release();
  rig_.engine().run_for(to_nanos(1.0));
  EXPECT_DOUBLE_EQ(rig_.package().frequency(), 3.7e9);
  EXPECT_NEAR(settled_power(2.0), 150.0, 10.0);
}

TEST_F(ActuatorTest, DdcmHoldsTargetViaDuty) {
  DdcmPowerLimiter limiter(rig_.rapl());
  limiter.attach(rig_.engine());
  limiter.set_target(80.0);
  EXPECT_NEAR(settled_power(), 80.0, 5.0);
  EXPECT_LT(limiter.duty(), 1.0);
  // Frequency stays at maximum: the knob is purely the duty cycle.
  EXPECT_DOUBLE_EQ(rig_.package().frequency(), 3.7e9);
}

TEST_F(ActuatorTest, DdcmReleaseRestoresFullDuty) {
  DdcmPowerLimiter limiter(rig_.rapl());
  limiter.attach(rig_.engine());
  limiter.set_target(60.0);
  rig_.engine().run_for(to_nanos(20.0));
  ASSERT_LT(limiter.duty(), 1.0);
  limiter.release();
  rig_.engine().run_for(to_nanos(1.0));
  EXPECT_DOUBLE_EQ(rig_.package().duty(), 1.0);
}

TEST_F(ActuatorTest, RaplLimiterDelegatesToHardware) {
  RaplLimiter limiter(rig_.rapl());
  limiter.set_target(85.0);
  EXPECT_TRUE(rig_.package().firmware().enforcing());
  EXPECT_NEAR(settled_power(10.0), 85.0, 4.0);
  limiter.release();
  EXPECT_FALSE(rig_.package().firmware().enforcing());
}

TEST_F(ActuatorTest, TargetsValidated) {
  DvfsPowerLimiter dvfs(rig_.rapl());
  DdcmPowerLimiter ddcm(rig_.rapl());
  EXPECT_THROW(dvfs.set_target(0.0), std::invalid_argument);
  EXPECT_THROW(ddcm.set_target(-5.0), std::invalid_argument);
}

TEST_F(ActuatorTest, PolymorphicUseThroughBase) {
  std::unique_ptr<PowerLimiter> limiter =
      std::make_unique<DvfsPowerLimiter>(rig_.rapl());
  EXPECT_STREQ(limiter->name(), "dvfs");
  limiter->attach(rig_.engine());
  limiter->set_target(100.0);
  EXPECT_NEAR(settled_power(), 100.0, 4.0);
}

}  // namespace
}  // namespace procap::policy
