// Tests for bus-carried power-budget directives.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/rig.hpp"
#include "policy/budget_listener.hpp"
#include "progress/monitor.hpp"

namespace procap::policy {
namespace {

TEST(BudgetCodec, RoundTrips) {
  EXPECT_EQ(encode_budget(std::nullopt), "uncapped");
  const auto uncapped = decode_budget("uncapped");
  ASSERT_TRUE(uncapped.has_value());
  EXPECT_FALSE(uncapped->has_value());
  const auto capped = decode_budget(encode_budget(Watts{95.5}));
  ASSERT_TRUE(capped.has_value());
  ASSERT_TRUE(capped->has_value());
  EXPECT_NEAR(**capped, 95.5, 1e-9);
}

TEST(BudgetCodec, RejectsGarbage) {
  EXPECT_FALSE(decode_budget("").has_value());
  EXPECT_FALSE(decode_budget("cap").has_value());
  EXPECT_FALSE(decode_budget("cap ").has_value());
  EXPECT_FALSE(decode_budget("cap abc").has_value());
  EXPECT_FALSE(decode_budget("cap -10").has_value());
  EXPECT_FALSE(decode_budget("cap 10 trailing").has_value());
  EXPECT_FALSE(decode_budget("CAP 10").has_value());
}

TEST(BudgetCodec, TopicNaming) {
  EXPECT_EQ(budget_topic("node07"), "power/budget/node07");
}

class BudgetListenerTest : public ::testing::Test {
 protected:
  BudgetListenerTest()
      : model_(apps::lammps()),
        app_(rig_.package(), rig_.broker(), model_.spec, 1),
        monitor_(rig_.broker().make_sub(), "lammps", rig_.time()),
        nrm_(rig_.rapl(), monitor_, rig_.time()),
        listener_(rig_.broker().make_sub(), "node0", nrm_),
        pub_(rig_.broker().make_pub()) {
    rig_.engine().every(kNanosPerSecond, [this](Nanos) {
      listener_.poll();
      monitor_.poll();
    });
  }

  exp::SimRig rig_;
  apps::AppModel model_;
  apps::SimApp app_;
  progress::Monitor monitor_;
  NodeResourceManager nrm_;
  BudgetListener listener_;
  std::shared_ptr<msgbus::PubSocket> pub_;
};

TEST_F(BudgetListenerTest, AppliesCapAndUncapDirectives) {
  pub_->publish(budget_topic("node0"), encode_budget(Watts{90.0}));
  rig_.engine().run_for(to_nanos(2.0));
  EXPECT_TRUE(rig_.package().firmware().enforcing());
  EXPECT_NEAR(rig_.package().firmware().limit().pl1.power, 90.0, 0.125);
  EXPECT_EQ(listener_.applied(), 1U);

  pub_->publish(budget_topic("node0"), encode_budget(std::nullopt));
  rig_.engine().run_for(to_nanos(2.0));
  EXPECT_FALSE(rig_.package().firmware().enforcing());
  EXPECT_EQ(listener_.applied(), 2U);
}

TEST_F(BudgetListenerTest, IgnoresOtherNodesAndGarbage) {
  pub_->publish(budget_topic("node1"), encode_budget(Watts{50.0}));
  pub_->publish(budget_topic("node0"), "total nonsense");
  rig_.engine().run_for(to_nanos(2.0));
  EXPECT_FALSE(rig_.package().firmware().enforcing());
  EXPECT_EQ(listener_.applied(), 0U);
  EXPECT_EQ(listener_.malformed(), 1U);
}

TEST_F(BudgetListenerTest, DirectivesApplyInArrivalOrder) {
  pub_->publish(budget_topic("node0"), encode_budget(Watts{120.0}));
  pub_->publish(budget_topic("node0"), encode_budget(Watts{80.0}));
  rig_.engine().run_for(to_nanos(2.0));
  EXPECT_NEAR(rig_.package().firmware().limit().pl1.power, 80.0, 0.125);
  EXPECT_EQ(listener_.applied(), 2U);
  ASSERT_TRUE(listener_.last().has_value());
  EXPECT_NEAR(**listener_.last(), 80.0, 1e-9);
}

TEST_F(BudgetListenerTest, EndToEndProgressRespondsToDirective) {
  rig_.engine().run_for(to_nanos(8.0));
  const double rate_before = monitor_.rates().mean_in(to_nanos(3.0),
                                                      to_nanos(8.0));
  pub_->publish(budget_topic("node0"), encode_budget(Watts{70.0}));
  rig_.engine().run_for(to_nanos(12.0));
  monitor_.poll();
  const double rate_after = monitor_.rates().mean_in(to_nanos(14.0),
                                                     to_nanos(20.0));
  EXPECT_LT(rate_after, 0.8 * rate_before);
}

TEST(BudgetListenerCtor, RejectsNullSocket) {
  exp::SimRig rig;
  const auto model = apps::lammps();
  apps::SimApp app(rig.package(), rig.broker(), model.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), "lammps", rig.time());
  NodeResourceManager nrm(rig.rapl(), monitor, rig.time());
  EXPECT_THROW(BudgetListener(nullptr, "n", nrm), std::invalid_argument);
}

}  // namespace
}  // namespace procap::policy
