// Tests for the simulated core: segment timing under DVFS and duty
// modulation, counter accounting, spin/idle behaviour.
#include <gtest/gtest.h>

#include "hw/core.hpp"
#include "hw/spec.hpp"

namespace procap::hw {
namespace {

class HwCoreTest : public ::testing::Test {
 protected:
  CpuSpec spec_ = CpuSpec::skylake24();
  Core core_{0, spec_};

  // Step the core for `seconds` at (f, duty), returning summed usage.
  CoreTickUsage run(Seconds seconds, Hertz f, double duty = 1.0) {
    CoreTickUsage total;
    const Nanos dt = msec(1);
    Nanos now = 0;
    const Nanos end = to_nanos(seconds);
    while (now < end) {
      const CoreTickUsage u = core_.step(now, dt, f, duty);
      total.compute_active += u.compute_active;
      total.stall_active += u.stall_active;
      total.spin_active += u.spin_active;
      total.gated += u.gated;
      total.sleeping += u.sleeping;
      total.idle += u.idle;
      total.bytes += u.bytes;
      now += dt;
    }
    return total;
  }
};

TEST_F(HwCoreTest, ComputeTimeScalesWithFrequency) {
  // 3.3e9 cycles at 3.3 GHz = 1 second of compute.
  core_.push_compute(3.3e9, 1e9);
  const CoreTickUsage u = run(2.0, mhz(3300));
  EXPECT_NEAR(u.compute_active, 1.0, 0.002);
  EXPECT_NEAR(u.idle, 1.0, 0.002);

  // The same work at half frequency takes twice as long.
  core_.push_compute(3.3e9, 1e9);
  const CoreTickUsage u2 = run(3.0, mhz(1650));
  EXPECT_NEAR(u2.compute_active, 2.0, 0.002);
}

TEST_F(HwCoreTest, MemoryStallIsFrequencyInvariant) {
  core_.push_memory(0.5, 64.0 * 1000, 1e6);
  const CoreTickUsage u = run(1.0, mhz(3300));
  EXPECT_NEAR(u.stall_active, 0.5, 0.002);

  core_.push_memory(0.5, 64.0 * 1000, 1e6);
  const CoreTickUsage u2 = run(1.0, mhz(1200));
  EXPECT_NEAR(u2.stall_active, 0.5, 0.002);
}

TEST_F(HwCoreTest, DutyCyclingStretchesComputeAndMemory) {
  // At duty 0.5, 0.25 s of compute plus 0.25 s of stall takes ~1 s wall.
  core_.push_compute(0.25 * 3.3e9, 1e6);
  core_.push_memory(0.25, 0.0, 0.0);
  const CoreTickUsage u = run(1.0, mhz(3300), 0.5);
  EXPECT_NEAR(u.compute_active, 0.25, 0.003);
  EXPECT_NEAR(u.stall_active, 0.25, 0.003);
  EXPECT_NEAR(u.gated, 0.5, 0.005);
  EXPECT_LT(u.idle, 0.01);
}

TEST_F(HwCoreTest, SleepElapsesInWallTimeRegardlessOfDuty) {
  core_.push_sleep(0.5);
  const CoreTickUsage u = run(1.0, mhz(1200), 1.0 / 16.0);
  EXPECT_NEAR(u.sleeping, 0.5, 0.002);
  EXPECT_NEAR(u.idle, 0.5, 0.05);  // remainder mostly idle (low duty spin-gating none)
}

TEST_F(HwCoreTest, InstructionsProratedAcrossTicks) {
  core_.push_compute(3.3e7, 6.6e7);  // 10 ms of work, IPC 2
  (void)run(0.005, mhz(3300));       // half the segment
  EXPECT_NEAR(core_.counters().instructions, 3.3e7, 1e5);
  (void)run(0.01, mhz(3300));  // finish
  EXPECT_NEAR(core_.counters().instructions, 6.6e7, 1e5);
}

TEST_F(HwCoreTest, BytesAndMissesAccounted) {
  const double bytes = 64.0 * 12345;
  core_.push_memory(0.01, bytes, 0.0);
  const CoreTickUsage u = run(0.02, mhz(3300));
  EXPECT_NEAR(u.bytes, bytes, 1.0);
  EXPECT_NEAR(core_.counters().l3_misses, 12345.0, 0.5);
}

TEST_F(HwCoreTest, SpinBurnsInstructionsWithoutProgress) {
  core_.set_spin(true);
  const CoreTickUsage u = run(1.0, mhz(3300));
  EXPECT_NEAR(u.spin_active, 1.0, 0.002);
  // spin_ipc * f * t instructions.
  EXPECT_NEAR(core_.counters().instructions, spec_.spin_ipc * 3.3e9, 1e7);
  EXPECT_DOUBLE_EQ(u.bytes, 0.0);
}

TEST_F(HwCoreTest, SpinRespectsDutyGating) {
  core_.set_spin(true);
  const CoreTickUsage u = run(1.0, mhz(3300), 0.25);
  EXPECT_NEAR(u.spin_active, 0.25, 0.003);
  EXPECT_NEAR(u.gated, 0.75, 0.003);
}

TEST_F(HwCoreTest, IdleWhenNoWorkAndNoSpin) {
  const CoreTickUsage u = run(0.5, mhz(3300));
  EXPECT_NEAR(u.idle, 0.5, 0.002);
  EXPECT_DOUBLE_EQ(core_.counters().instructions, 0.0);
}

TEST_F(HwCoreTest, IdleCallbackSuppliesWork) {
  int calls = 0;
  core_.set_idle_callback([&](unsigned id, Nanos) {
    EXPECT_EQ(id, 0U);
    if (calls++ == 0) {
      core_.push_compute(3.3e6, 1000);  // 1 ms of work
    }
  });
  const CoreTickUsage u = run(0.01, mhz(3300));
  EXPECT_NEAR(u.compute_active, 0.001, 1e-4);
  EXPECT_GE(calls, 2);  // once to push work, later ticks find nothing
}

TEST_F(HwCoreTest, ZeroLengthSegmentsBookkeepImmediately) {
  core_.push_compute(0.0, 500.0);
  core_.push_memory(0.0, 640.0, 100.0);
  EXPECT_TRUE(core_.queue_empty());
  EXPECT_DOUBLE_EQ(core_.counters().instructions, 600.0);
  EXPECT_DOUBLE_EQ(core_.counters().l3_misses, 10.0);
}

TEST_F(HwCoreTest, NegativeAmountsRejected) {
  EXPECT_THROW(core_.push_compute(-1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(core_.push_memory(-1.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(core_.push_sleep(-1.0), std::invalid_argument);
}

TEST_F(HwCoreTest, ResetCountersZeroes) {
  core_.push_compute(3.3e6, 1000);
  (void)run(0.01, mhz(3300));
  core_.reset_counters();
  EXPECT_DOUBLE_EQ(core_.counters().instructions, 0.0);
  EXPECT_DOUBLE_EQ(core_.counters().core_cycles, 0.0);
}

TEST_F(HwCoreTest, UsageAccountsFullTick) {
  core_.push_compute(3.3e6, 0.0);
  core_.push_sleep(0.002);
  core_.set_spin(true);
  const CoreTickUsage u = run(0.01, mhz(3300), 0.5);
  EXPECT_NEAR(u.total(), 0.01, 1e-6);
}

TEST(CpuSpecTest, FrequencySnapping) {
  const CpuSpec spec = CpuSpec::skylake24();
  EXPECT_DOUBLE_EQ(spec.clamp_frequency(mhz(2650)), mhz(2600));
  EXPECT_DOUBLE_EQ(spec.clamp_frequency(mhz(99999)), mhz(3700));
  EXPECT_DOUBLE_EQ(spec.clamp_frequency(mhz(100)), mhz(1200));
}

TEST(CpuSpecTest, DutySnapping) {
  const CpuSpec spec = CpuSpec::skylake24();
  EXPECT_DOUBLE_EQ(spec.snap_duty(1.0), 1.0);
  EXPECT_DOUBLE_EQ(spec.snap_duty(0.49), 0.5);
  EXPECT_DOUBLE_EQ(spec.snap_duty(0.0), 1.0 / 16.0);
}

TEST(CpuSpecTest, EffectiveAlphaInRealisticRange) {
  const CpuSpec spec = CpuSpec::skylake24();
  const double alpha = spec.effective_alpha(spec.f_min, spec.f_max);
  // The design point: super-quadratic (the model assumes exactly 2).
  EXPECT_GT(alpha, 2.1);
  EXPECT_LT(alpha, 2.8);
  // ...and the local exponent in the turbo band is much steeper.
  const double turbo_alpha = spec.effective_alpha(spec.f_nominal, spec.f_max);
  EXPECT_GT(turbo_alpha, 3.0);
}

TEST(CpuSpecTest, VoltageMonotoneInFrequency) {
  const CpuSpec spec = CpuSpec::skylake24();
  EXPECT_DOUBLE_EQ(spec.voltage(spec.f_min), spec.v_min);
  EXPECT_DOUBLE_EQ(spec.voltage(spec.f_nominal), spec.v_nominal);
  EXPECT_DOUBLE_EQ(spec.voltage(spec.f_max), spec.v_turbo);
  EXPECT_LT(spec.voltage(mhz(2000)), spec.voltage(mhz(3000)));
  // Turbo segment is steeper than the nominal DVFS segment.
  const double dvfs_slope = (spec.voltage(mhz(3300)) - spec.voltage(mhz(2300))) / 1.0;
  const double turbo_slope = (spec.voltage(mhz(3700)) - spec.voltage(mhz(3400))) / 0.3;
  EXPECT_GT(turbo_slope, dvfs_slope * 1.5);
}

}  // namespace
}  // namespace procap::hw
