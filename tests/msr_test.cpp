// Tests for the MSR device abstraction and msr-safe allow-list mediation.
#include <gtest/gtest.h>

#include "msr/addresses.hpp"
#include "msr/emulated.hpp"
#include "msr/msrsafe.hpp"

namespace procap::msr {
namespace {

TEST(EmulatedMsr, DefinedRegisterStoresPerCpu) {
  EmulatedMsr dev(2);
  dev.define(0x10, 7);
  EXPECT_EQ(dev.read(0, 0x10), 7U);
  dev.write(1, 0x10, 99);
  EXPECT_EQ(dev.read(1, 0x10), 99U);
  EXPECT_EQ(dev.read(0, 0x10), 7U);  // other CPU untouched
}

TEST(EmulatedMsr, UndefinedRegisterThrows) {
  EmulatedMsr dev(1);
  EXPECT_THROW((void)dev.read(0, 0x999), MsrError);
  EXPECT_THROW(dev.write(0, 0x999, 1), MsrError);
}

TEST(EmulatedMsr, CpuOutOfRangeThrows) {
  EmulatedMsr dev(2);
  dev.define(0x10);
  EXPECT_THROW((void)dev.read(2, 0x10), MsrError);
  EXPECT_THROW(dev.write(5, 0x10, 0), MsrError);
}

TEST(EmulatedMsr, ZeroCpusRejected) {
  EXPECT_THROW(EmulatedMsr(0), MsrError);
}

TEST(EmulatedMsr, ReadHookOverridesStorage) {
  EmulatedMsr dev(1);
  dev.define(0x10, 1);
  dev.on_read(0x10, [](unsigned) { return 42ULL; });
  EXPECT_EQ(dev.read(0, 0x10), 42U);
  EXPECT_EQ(dev.peek(0, 0x10), 1U);  // backdoor sees the stored value
}

TEST(EmulatedMsr, WriteHookObservesValue) {
  EmulatedMsr dev(1);
  dev.define(0x10);
  std::uint64_t seen = 0;
  unsigned seen_cpu = 99;
  dev.on_write(0x10, [&](unsigned cpu, std::uint64_t v) {
    seen = v;
    seen_cpu = cpu;
  });
  dev.write(0, 0x10, 0xABCD);
  EXPECT_EQ(seen, 0xABCDU);
  EXPECT_EQ(seen_cpu, 0U);
  EXPECT_EQ(dev.peek(0, 0x10), 0xABCDU);  // stored before hook
}

TEST(EmulatedMsr, PokeDoesNotTriggerHooks) {
  EmulatedMsr dev(1);
  dev.define(0x10);
  bool fired = false;
  dev.on_write(0x10, [&](unsigned, std::uint64_t) { fired = true; });
  dev.poke(0, 0x10, 5);
  EXPECT_FALSE(fired);
  EXPECT_EQ(dev.peek(0, 0x10), 5U);
}

TEST(EmulatedMsr, RedefineKeepsValue) {
  EmulatedMsr dev(1);
  dev.define(0x10, 3);
  dev.write(0, 0x10, 11);
  dev.define(0x10, 99);  // no-op: register exists
  EXPECT_EQ(dev.read(0, 0x10), 11U);
}

TEST(AllowList, ParseBasicFormat) {
  const auto list = AllowList::parse(
      "# comment line\n"
      "0x610 0x00FFFFFF\n"
      "0x611 0x0 # trailing comment\n"
      "\n");
  EXPECT_EQ(list.size(), 2U);
  EXPECT_TRUE(list.readable(0x610));
  EXPECT_EQ(list.write_mask(0x610), 0x00FFFFFFU);
  EXPECT_TRUE(list.readable(0x611));
  EXPECT_EQ(list.write_mask(0x611), 0U);
  EXPECT_FALSE(list.readable(0x612));
}

TEST(AllowList, ParseRejectsMissingMask) {
  EXPECT_THROW(AllowList::parse("0x610\n"), MsrError);
}

TEST(AllowList, ParseRejectsGarbage) {
  EXPECT_THROW(AllowList::parse("zzz 0x1\n"), MsrError);
  EXPECT_THROW(AllowList::parse("0x10 0x1 extra\n"), MsrError);
}

TEST(AllowList, RaplDefaultCoversRaplStack) {
  const auto list = AllowList::rapl_default();
  EXPECT_TRUE(list.readable(kMsrRaplPowerUnit));
  EXPECT_TRUE(list.readable(kMsrPkgEnergyStatus));
  EXPECT_EQ(list.write_mask(kMsrPkgEnergyStatus), 0U);  // read-only
  EXPECT_NE(list.write_mask(kMsrPkgPowerLimit), 0U);
  EXPECT_NE(list.write_mask(kIa32PerfCtl), 0U);
}

TEST(SafeMsrDevice, DeniesUnlistedRead) {
  EmulatedMsr inner(1);
  inner.define(0x10, 1);
  AllowList list;
  SafeMsrDevice safe(inner, list);
  EXPECT_THROW((void)safe.read(0, 0x10), MsrError);
  EXPECT_EQ(safe.denied(), 1U);
}

TEST(SafeMsrDevice, AllowsListedRead) {
  EmulatedMsr inner(1);
  inner.define(0x10, 77);
  AllowList list;
  list.allow(0x10, 0);
  SafeMsrDevice safe(inner, list);
  EXPECT_EQ(safe.read(0, 0x10), 77U);
}

TEST(SafeMsrDevice, MasksWriteBits) {
  EmulatedMsr inner(1);
  inner.define(0x10, 0xFF00);
  AllowList list;
  list.allow(0x10, 0x00FF);  // only the low byte is writable
  SafeMsrDevice safe(inner, list);
  safe.write(0, 0x10, 0x1234);
  EXPECT_EQ(inner.read(0, 0x10), 0xFF34U);  // high byte preserved
}

TEST(SafeMsrDevice, WriteToReadOnlyThrows) {
  EmulatedMsr inner(1);
  inner.define(0x10, 0);
  AllowList list;
  list.allow(0x10, 0);
  SafeMsrDevice safe(inner, list);
  EXPECT_THROW(safe.write(0, 0x10, 1), MsrError);
}

TEST(SafeMsrDevice, ForwardsCpuCount) {
  EmulatedMsr inner(24);
  SafeMsrDevice safe(inner, AllowList{});
  EXPECT_EQ(safe.cpu_count(), 24U);
}

}  // namespace
}  // namespace procap::msr
