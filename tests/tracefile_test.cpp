// Tests for progress trace recording and replay.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/rig.hpp"
#include "progress/monitor.hpp"
#include "progress/reporter.hpp"
#include "progress/tracefile.hpp"

namespace procap::progress {
namespace {

std::string temp_path(const char* tag) {
  return testing::TempDir() + "/procap_trace_" + tag + ".csv";
}

TEST(TraceFile, RecordAndLoadRoundTrip) {
  const std::string path = temp_path("roundtrip");
  ManualTimeSource clock;
  msgbus::Broker broker(clock);
  Reporter reporter(broker.make_pub(), {"app", "u"});
  {
    TraceWriter writer(broker.make_sub(), "app", path);
    clock.advance(to_nanos(0.25));
    reporter.report(3.0, 1);
    clock.advance(to_nanos(0.25));
    reporter.report(4.5, 2);
    writer.poll();
    EXPECT_EQ(writer.written(), 2U);
  }
  const auto trace = load_trace(path);
  ASSERT_EQ(trace.size(), 2U);
  EXPECT_EQ(trace[0], (TraceSample{to_nanos(0.25), 3.0, 1}));
  EXPECT_EQ(trace[1], (TraceSample{to_nanos(0.5), 4.5, 2}));
  std::remove(path.c_str());
}

TEST(TraceFile, WriterValidatesArguments) {
  ManualTimeSource clock;
  msgbus::Broker broker(clock);
  EXPECT_THROW(TraceWriter(nullptr, "x", temp_path("null")),
               std::invalid_argument);
  EXPECT_THROW(TraceWriter(broker.make_sub(), "x", "/nonexistent/dir/t.csv"),
               std::runtime_error);
}

TEST(TraceFile, PhaseMarkersSurviveRoundTrip) {
  // Phase transitions (and the unphased default) must replay exactly:
  // the analyze CLI's phase detection depends on the recorded markers.
  const std::string path = temp_path("phases");
  ManualTimeSource clock;
  msgbus::Broker broker(clock);
  Reporter reporter(broker.make_pub(), {"app", "u"});
  {
    TraceWriter writer(broker.make_sub(), "app", path);
    clock.advance(to_nanos(0.5));
    reporter.report(1.0);  // unphased
    clock.advance(to_nanos(0.5));
    reporter.report(2.0, 1);  // enter phase 1
    clock.advance(to_nanos(0.5));
    reporter.report(3.0, 1);
    clock.advance(to_nanos(0.5));
    reporter.report(4.0, 2);  // phase transition
    writer.poll();
    EXPECT_EQ(writer.written(), 4U);
  }
  const auto trace = load_trace(path);
  ASSERT_EQ(trace.size(), 4U);
  EXPECT_EQ(trace[0].phase, kNoPhase);
  EXPECT_EQ(trace[1].phase, 1);
  EXPECT_EQ(trace[2].phase, 1);
  EXPECT_EQ(trace[3].phase, 2);
  std::remove(path.c_str());
}

TEST(TraceFile, LoadRejectsMalformedRows) {
  const std::string path = temp_path("bad");
  const char* kBadBodies[] = {
      "1.0,2.0\n",         // missing column
      "1.0,2.0,1,9\n",     // extra column
      "abc,2.0,1\n",       // non-numeric time
      "1.0,xyz,1\n",       // non-numeric amount
      "1.0,2.0,one\n",     // non-numeric phase
      "1.0,2.0,\n",        // empty phase cell
  };
  for (const char* body : kBadBodies) {
    {
      std::ofstream file(path);
      file << "t_seconds,amount,phase\n" << body;
    }
    EXPECT_THROW((void)load_trace(path), std::invalid_argument) << body;
  }
  std::remove(path.c_str());
  EXPECT_THROW((void)load_trace("/nonexistent/trace.csv"),
               std::runtime_error);
}

TEST(TraceFile, LoadSkipsBlankLinesAndHeader) {
  const std::string path = temp_path("blanks");
  {
    std::ofstream file(path);
    file << "t_seconds,amount,phase\n\n0.5,1.5,3\n\n";
  }
  const auto trace = load_trace(path);
  ASSERT_EQ(trace.size(), 1U);
  EXPECT_EQ(trace[0], (TraceSample{to_nanos(0.5), 1.5, 3}));
  std::remove(path.c_str());
}

TEST(TraceFile, ReplayMatchesLiveMonitor) {
  // The same stream, consumed live by a Monitor and recorded+replayed,
  // must produce identical windowed rates (the RateWindower is shared).
  const std::string path = temp_path("replay");
  exp::SimRig rig;
  const auto model = apps::amg();
  apps::SimApp app(rig.package(), rig.broker(), model.spec, 7);
  Monitor live(rig.broker().make_sub(), "amg", rig.time());
  TraceWriter writer(rig.broker().make_sub(), "amg", path);
  rig.engine().every(kNanosPerSecond, [&](Nanos) {
    live.poll();
    writer.poll();
  });
  rig.engine().run_for(to_nanos(20.0));
  live.poll();
  writer.poll();

  const auto replayed = windowed_rates(load_trace(path));
  // The live monitor's windows start at t=0 (monitor construction); the
  // replay's at the first sample's window.  Compare overlapping windows.
  ASSERT_GT(replayed.size(), 10U);
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    const Nanos t = replayed[i].t;
    bool found = false;
    for (std::size_t j = 0; j < live.rates().size(); ++j) {
      if (live.rates()[j].t == t) {
        EXPECT_DOUBLE_EQ(live.rates()[j].value, replayed[i].value)
            << "window at " << to_seconds(t);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "live monitor lacks window at " << to_seconds(t);
  }
  std::remove(path.c_str());
}

TEST(TraceFile, WindowedRatesOfEmptyTrace) {
  EXPECT_TRUE(windowed_rates({}).empty());
}

TEST(TraceFile, LoadRatesCsv) {
  const std::string path = temp_path("rates");
  {
    std::ofstream file(path);
    file << "t_seconds,rate\n0,5.5\n1,6.5\n";
  }
  const TimeSeries series = load_rates_csv(path);
  ASSERT_EQ(series.size(), 2U);
  EXPECT_DOUBLE_EQ(series[0].value, 5.5);
  EXPECT_EQ(series[1].t, kNanosPerSecond);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace procap::progress
