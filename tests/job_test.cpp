// Tests for the job-level substrate: multi-node clusters with
// manufacturing variability and job-budget distribution policies.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/suite.hpp"
#include "job/cluster.hpp"
#include "job/manager.hpp"
#include "sim/engine.hpp"
#include "util/stats.hpp"

namespace procap::job {
namespace {

ClusterSpec spec_with(unsigned nodes, double cv, std::uint64_t seed = 7) {
  ClusterSpec spec;
  spec.nodes = nodes;
  spec.variability_cv = cv;
  spec.seed = seed;
  return spec;
}

TEST(Cluster, RejectsZeroNodes) {
  sim::Engine engine;
  EXPECT_THROW(Cluster(engine, apps::lammps(), spec_with(0, 0.0)),
               std::invalid_argument);
}

TEST(Cluster, VariabilityIsDeterministicPerSeed) {
  sim::Engine e1;
  Cluster a(e1, apps::lammps(), spec_with(4, 0.08, 42));
  sim::Engine e2;
  Cluster b(e2, apps::lammps(), spec_with(4, 0.08, 42));
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(a.node(i).power_efficiency_factor,
                     b.node(i).power_efficiency_factor);
  }
}

TEST(Cluster, VariabilitySpreadsParts) {
  sim::Engine engine;
  Cluster cluster(engine, apps::lammps(), spec_with(8, 0.08));
  StreamingStats factors;
  for (unsigned i = 0; i < cluster.size(); ++i) {
    factors.add(cluster.node(i).power_efficiency_factor);
  }
  EXPECT_GT(factors.stddev(), 0.01);
  EXPECT_NEAR(factors.mean(), 1.0, 0.1);
}

TEST(Cluster, ZeroVariabilityMeansIdenticalParts) {
  sim::Engine engine;
  Cluster cluster(engine, apps::lammps(), spec_with(3, 0.0));
  for (unsigned i = 0; i < cluster.size(); ++i) {
    EXPECT_DOUBLE_EQ(cluster.node(i).power_efficiency_factor, 1.0);
  }
}

TEST(Cluster, UncappedNodesPerformIdentically) {
  // Variability is a *power* spread; uncapped, all nodes hit the same
  // frequency ceiling and progress identically (Rountree's observation:
  // the spread appears only under a power bound).
  sim::Engine engine;
  Cluster cluster(engine, apps::lammps(), spec_with(4, 0.10));
  engine.run_for(to_nanos(10.0));
  const auto rates = cluster.rates();
  const double lo = *std::min_element(rates.begin(), rates.end());
  const double hi = *std::max_element(rates.begin(), rates.end());
  EXPECT_GT(lo, 0.0);
  // Rates are quantized to whole iterations completed inside the run, so
  // nodes straddling an iteration boundary at cutoff differ by 1/n (4.3%
  // at ~23 iterations); anything beyond one boundary would be a real
  // performance spread.
  EXPECT_LT((hi - lo) / hi, 0.05);
}

TEST(Cluster, CappedNodesSpread) {
  sim::Engine engine;
  Cluster cluster(engine, apps::lammps(), spec_with(4, 0.10));
  for (unsigned i = 0; i < cluster.size(); ++i) {
    cluster.node(i).rapl->set_pkg_cap(90.0);
  }
  engine.run_for(to_nanos(15.0));
  const auto rates = cluster.rates();
  const double lo = *std::min_element(rates.begin(), rates.end());
  const double hi = *std::max_element(rates.begin(), rates.end());
  EXPECT_GT((hi - lo) / hi, 0.03);  // the power-bound variability effect
  EXPECT_DOUBLE_EQ(cluster.job_rate(), lo);
}

TEST(JobManager, UniformSplitSumsToBudget) {
  sim::Engine engine;
  Cluster cluster(engine, apps::lammps(), spec_with(4, 0.05));
  JobPowerManager manager(cluster, engine.time(), 400.0, {});
  double total = 0.0;
  for (const Watts cap : manager.caps()) {
    EXPECT_DOUBLE_EQ(cap, 100.0);
    total += cap;
  }
  EXPECT_DOUBLE_EQ(total, 400.0);
}

TEST(JobManager, RejectsInfeasibleBudget) {
  sim::Engine engine;
  Cluster cluster(engine, apps::lammps(), spec_with(4, 0.05));
  JobManagerConfig config;
  config.min_node_cap = 50.0;
  EXPECT_THROW(JobPowerManager(cluster, engine.time(), 100.0, config),
               std::invalid_argument);
  EXPECT_THROW(JobPowerManager(cluster, engine.time(), -1.0, {}),
               std::invalid_argument);
}

TEST(JobManager, BudgetInvariantHoldsUnderRebalancing) {
  sim::Engine engine;
  Cluster cluster(engine, apps::lammps(), spec_with(4, 0.10));
  JobManagerConfig config;
  config.policy = JobPolicy::kCriticalPath;
  JobPowerManager manager(cluster, engine.time(), 360.0, config);
  manager.attach(engine);
  for (int step = 0; step < 30; ++step) {
    engine.run_for(kNanosPerSecond);
    double total = 0.0;
    for (const Watts cap : manager.caps()) {
      total += cap;
      EXPECT_GE(cap, config.min_node_cap - 1e-9);
      EXPECT_LE(cap, config.max_node_cap + 1e-9);
    }
    EXPECT_LE(total, 360.0 + 1e-6);
  }
}

TEST(JobManager, SetBudgetRescalesProportionally) {
  sim::Engine engine;
  Cluster cluster(engine, apps::lammps(), spec_with(2, 0.0));
  JobPowerManager manager(cluster, engine.time(), 200.0, {});
  manager.set_budget(150.0);
  EXPECT_DOUBLE_EQ(manager.budget(), 150.0);
  for (const Watts cap : manager.caps()) {
    EXPECT_DOUBLE_EQ(cap, 75.0);
  }
  // The node limits were actually programmed.
  EXPECT_NEAR(cluster.node(0).node->package().firmware().limit().pl1.power,
              75.0, 0.125);
}

TEST(JobManager, CriticalPathBeatsUniformOnVariableNodes) {
  // Same cluster (same seed), same tight budget; the progress-aware
  // policy shifts watts toward the power-inefficient parts, narrowing
  // the node-rate spread and lifting the job (slowest-node) rate.
  struct Outcome {
    double job_rate = 0.0;
    double rate_spread = 0.0;  // max - min of per-node mean rates
    std::vector<Watts> caps;
    std::vector<double> factors;
  };
  auto run_policy = [](JobPolicy policy) {
    sim::Engine engine;
    Cluster cluster(engine, apps::lammps(), spec_with(4, 0.15, 42));
    JobManagerConfig config;
    config.policy = policy;
    config.spread_deadband = 0.02;
    JobPowerManager manager(cluster, engine.time(), 280.0, config);
    manager.attach(engine);
    engine.run_for(to_nanos(80.0));
    Outcome out;
    out.job_rate =
        manager.job_rate_series().mean_in(to_nanos(40.0), to_nanos(80.0));
    std::vector<double> means;
    for (unsigned i = 0; i < cluster.size(); ++i) {
      means.push_back(cluster.node(i).monitor->rates().mean_in(
          to_nanos(40.0), to_nanos(80.0)));
      out.factors.push_back(cluster.node(i).power_efficiency_factor);
    }
    out.rate_spread = *std::max_element(means.begin(), means.end()) -
                      *std::min_element(means.begin(), means.end());
    out.caps = manager.caps();
    return out;
  };
  const Outcome uniform = run_policy(JobPolicy::kUniform);
  const Outcome critical = run_policy(JobPolicy::kCriticalPath);

  // (a) Watts flowed toward the least efficient part...
  const auto worst = static_cast<std::size_t>(
      std::max_element(critical.factors.begin(), critical.factors.end()) -
      critical.factors.begin());
  const auto best = static_cast<std::size_t>(
      std::min_element(critical.factors.begin(), critical.factors.end()) -
      critical.factors.begin());
  EXPECT_GT(critical.caps[worst], critical.caps[best] + 4.0);
  // (b) ...narrowing the rate spread...
  EXPECT_LT(critical.rate_spread, 0.7 * uniform.rate_spread);
  // (c) ...and lifting (never hurting) the slowest node's rate.
  EXPECT_GT(critical.job_rate, uniform.job_rate * 1.005);
}

}  // namespace
}  // namespace procap::job
