// Tests for the workload specs, the SimApp runtime, and Listing 1.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "apps/listing1.hpp"
#include "apps/suite.hpp"
#include "counters/derived.hpp"
#include "exp/rig.hpp"
#include "progress/monitor.hpp"

namespace procap::apps {
namespace {

TEST(Suite, AnalyticBetasMatchTableVI) {
  const Hertz f_max = hw::CpuSpec::skylake24().f_nominal;
  EXPECT_NEAR(lammps().spec.analytic_beta(0, f_max), 1.00, 0.01);
  EXPECT_NEAR(stream().spec.analytic_beta(0, f_max), 0.37, 0.01);
  EXPECT_NEAR(amg().spec.analytic_beta(0, f_max), 0.52, 0.01);
  EXPECT_NEAR(qmcpack_dmc().spec.analytic_beta(0, f_max), 0.84, 0.01);
  EXPECT_NEAR(openmc_active().spec.analytic_beta(0, f_max), 0.93, 0.01);
}

TEST(Suite, AnalyticMpoMatchesTableVI) {
  // MPO = (bytes / 64) / instructions, in units of 1e-3.
  auto mpo = [](const AppModel& m) {
    const auto& ph = m.spec.phases.at(0);
    return ph.bytes / 64.0 / (ph.compute_instr + ph.memory_instr) * 1e3;
  };
  EXPECT_NEAR(mpo(lammps()), 0.32, 0.05);
  EXPECT_NEAR(mpo(stream()), 50.9, 2.0);
  EXPECT_NEAR(mpo(amg()), 30.1, 1.5);
  EXPECT_NEAR(mpo(qmcpack_dmc()), 3.91, 0.3);
  EXPECT_NEAR(mpo(openmc_active()), 0.20, 0.05);
}

TEST(Suite, ExpectedIterationRates) {
  const Hertz f_max = hw::CpuSpec::skylake24().f_nominal;
  EXPECT_NEAR(1.0 / lammps().spec.expected_iteration_seconds(0, f_max), 20.0,
              0.5);
  EXPECT_NEAR(1.0 / stream().spec.expected_iteration_seconds(0, f_max), 16.0,
              0.5);
  EXPECT_NEAR(1.0 / amg().spec.expected_iteration_seconds(0, f_max), 3.0,
              0.1);
  EXPECT_NEAR(1.0 / qmcpack_dmc().spec.expected_iteration_seconds(0, f_max),
              16.0, 0.5);
  EXPECT_NEAR(
      1.0 / openmc_active().spec.expected_iteration_seconds(0, f_max), 1.0,
      0.05);
}

TEST(Suite, ByNameRoundTrip) {
  for (const auto& name : suite_names()) {
    EXPECT_EQ(by_name(name).spec.name, name) << name;
  }
  EXPECT_THROW(by_name("hacc"), std::invalid_argument);
}

TEST(Suite, QmcpackHasThreePhases) {
  const auto model = qmcpack();
  ASSERT_EQ(model.spec.phases.size(), 3U);
  EXPECT_EQ(model.spec.phases[0].name, "VMC1");
  EXPECT_EQ(model.spec.phases[2].name, "DMC");
  // Distinct block rates, descending.
  const Hertz f_max = hw::CpuSpec::skylake24().f_nominal;
  const double r1 = 1.0 / model.spec.expected_iteration_seconds(0, f_max);
  const double r2 = 1.0 / model.spec.expected_iteration_seconds(1, f_max);
  const double r3 = 1.0 / model.spec.expected_iteration_seconds(2, f_max);
  EXPECT_GT(r1, r2 * 1.15);
  EXPECT_GT(r2, r3 * 1.15);
}

TEST(Suite, InterviewTraitsCoverAllNineApps) {
  EXPECT_EQ(interview_traits().size(), 9U);
}

TEST(SimApp, RunsToCompletionAndReportsProgress) {
  exp::SimRig rig;
  auto model = lammps(40);  // 40 timesteps ~ 2 s
  SimApp app(rig.package(), rig.broker(), model.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), "lammps", rig.time());
  rig.engine().every(kNanosPerSecond, [&](Nanos) { monitor.poll(); });
  const bool finished =
      rig.engine().run_until([&] { return app.done(); }, to_nanos(10.0));
  EXPECT_TRUE(finished);
  EXPECT_EQ(app.iterations_completed(), 40);
  EXPECT_DOUBLE_EQ(app.total_progress(), 40.0 * 40000.0);
  monitor.poll();
  EXPECT_DOUBLE_EQ(monitor.total_work(), 40.0 * 40000.0);
}

TEST(SimApp, UncappedRateMatchesAnalytic) {
  exp::SimRig rig;
  auto model = lammps();
  SimApp app(rig.package(), rig.broker(), model.spec, 1);
  rig.engine().run_for(to_nanos(5.0));
  // Uncapped runs at turbo (3700 MHz): ~22.4 iterations/s for 5 s.
  EXPECT_NEAR(static_cast<double>(app.iterations_completed()), 112.0, 6.0);
}

TEST(SimApp, DvfsSlowsProgressPerBeta) {
  // At 1650 MHz a beta~1 app runs at half speed.
  exp::SimRig rig;
  rig.rapl().set_frequency(mhz(1650));
  auto model = lammps();
  SimApp app(rig.package(), rig.broker(), model.spec, 1);
  rig.engine().run_for(to_nanos(5.0));
  EXPECT_NEAR(static_cast<double>(app.iterations_completed()), 50.0, 4.0);
}

TEST(SimApp, MemoryBoundBarelySlowsUnderDvfs) {
  exp::SimRig rig;
  rig.rapl().set_frequency(mhz(1650));
  auto model = stream();
  SimApp app(rig.package(), rig.broker(), model.spec, 1);
  rig.engine().run_for(to_nanos(5.0));
  // Dilation = 0.37 * (2 - 1) + 1 = 1.37 -> ~58 iterations in 5 s.
  EXPECT_NEAR(static_cast<double>(app.iterations_completed()), 58.0, 5.0);
}

TEST(SimApp, PhasesAdvanceInOrder) {
  exp::SimRig rig;
  auto model = qmcpack();
  // Shrink phases so the test is fast.
  model.spec.phases[0].iterations = 30;
  model.spec.phases[1].iterations = 24;
  model.spec.phases[2].iterations = 32;
  SimApp app(rig.package(), rig.broker(), model.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), "qmcpack", rig.time());
  rig.engine().every(kNanosPerSecond, [&](Nanos) { monitor.poll(); });
  EXPECT_EQ(app.current_phase(), 0U);
  const bool finished =
      rig.engine().run_until([&] { return app.done(); }, to_nanos(20.0));
  EXPECT_TRUE(finished);
  EXPECT_EQ(app.iterations_completed(), 30 + 24 + 32);
  monitor.poll();
  // All three phase tags observed.
  EXPECT_TRUE(monitor.phase_rates().contains(0));
  EXPECT_TRUE(monitor.phase_rates().contains(1));
  EXPECT_TRUE(monitor.phase_rates().contains(2));
}

TEST(SimApp, StopRequestEndsAtIterationBoundary) {
  exp::SimRig rig;
  auto model = lammps();
  SimApp app(rig.package(), rig.broker(), model.spec, 1);
  rig.engine().run_for(to_nanos(1.0));
  app.stop();
  const bool finished =
      rig.engine().run_until([&] { return app.done(); }, to_nanos(1.0));
  EXPECT_TRUE(finished);
}

TEST(SimApp, EarlyStopBoundsUnboundedPhase) {
  exp::SimRig rig;
  auto model = candle();
  // Speed the epochs up 20x so the test stays fast.
  model.spec.phases[0].cycles /= 20.0;
  model.spec.phases[0].mem_stall /= 20.0;
  model.spec.phases[0].bytes /= 20.0;
  SimApp app(rig.package(), rig.broker(), model.spec, 1);
  const bool finished =
      rig.engine().run_until([&] { return app.done(); }, to_nanos(30.0));
  EXPECT_TRUE(finished);
  // Accuracy crosses 0.93 around epoch ~23 (noise makes it vary).
  EXPECT_GT(app.iterations_completed(), 10);
  EXPECT_LT(app.iterations_completed(), 60);
}

TEST(SimApp, WorkerImbalanceBurnsSpinWithoutProgressChange) {
  // Two rigs: balanced vs imbalanced with the same critical path.
  exp::SimRig balanced;
  auto model1 = lammps();
  SimApp app1(balanced.package(), balanced.broker(), model1.spec, 1);
  balanced.engine().run_for(to_nanos(4.0));

  exp::SimRig imbalanced;
  auto model2 = lammps();
  SimApp app2(imbalanced.package(), imbalanced.broker(), model2.spec, 1);
  app2.set_worker_scale([](unsigned w) {
    return (w + 1) / 24.0;  // worker 23 keeps the full load: same critical path
  });
  imbalanced.engine().run_for(to_nanos(4.0));

  // Progress (rate) is the same within noise...
  EXPECT_NEAR(static_cast<double>(app2.iterations_completed()),
              static_cast<double>(app1.iterations_completed()), 4.0);
  // ...and although the imbalanced run performs roughly half the useful
  // work, barrier spin keeps the retired-instruction count (hence MIPS)
  // close to the balanced run — Table I's MIPS/progress decoupling.
  const double ins1 = balanced.package().total_counters().instructions;
  const double ins2 = imbalanced.package().total_counters().instructions;
  EXPECT_GT(ins2, 0.80 * ins1);
  const double useful2 = app2.total_progress();
  const double useful1 = app1.total_progress();
  EXPECT_NEAR(useful2, useful1, 0.06 * useful1);  // same progress metric
}

TEST(SimApp, RejectsEmptyWorkload) {
  exp::SimRig rig;
  WorkloadSpec empty{"empty", "u", {}, nullptr};
  EXPECT_THROW(SimApp(rig.package(), rig.broker(), empty, 1),
               std::invalid_argument);
}

TEST(Listing1, OneIterationPerSecondRegardlessOfPattern) {
  for (const auto pattern : {WorkPattern::kEqual, WorkPattern::kUnequal}) {
    exp::SimRig rig;
    Listing1App app(rig.package(), rig.broker(), pattern, 5);
    progress::Monitor monitor(rig.broker().make_sub(), "listing1",
                              rig.time());
    rig.engine().every(kNanosPerSecond, [&](Nanos) { monitor.poll(); });
    const bool finished =
        rig.engine().run_until([&] { return app.done(); }, to_nanos(10.0));
    EXPECT_TRUE(finished);
    EXPECT_EQ(app.iterations_completed(), 5);
    // Each iteration took ~1 s (the slowest rank sleeps the full second).
    EXPECT_NEAR(to_seconds(rig.engine().now()), 5.0, 0.2);
  }
}

TEST(Listing1, WorkUnitsHalveUnderImbalance) {
  exp::SimRig rig;
  Listing1App equal(rig.package(), rig.broker(), WorkPattern::kEqual);
  const double units_equal = equal.work_units_per_iteration();
  exp::SimRig rig2;
  Listing1App unequal(rig2.package(), rig2.broker(), WorkPattern::kUnequal);
  const double units_unequal = unequal.work_units_per_iteration();
  EXPECT_NEAR(units_equal, 24.0e6, 1.0);
  // Sum of (r+1)/24 for r=0..23 = 12.5 rank-seconds.
  EXPECT_NEAR(units_unequal, 12.5e6, 1.0);
  EXPECT_NEAR(units_equal / units_unequal, 1.92, 0.01);
}

TEST(Listing1, UnequalWorkInflatesMips) {
  auto measure_mips = [](WorkPattern pattern) {
    exp::SimRig rig;
    Listing1App app(rig.package(), rig.broker(), pattern, 3);
    // Stop at the completion event: under span batching run_until only
    // re-evaluates its predicate at span boundaries, so without the stop
    // request the elapsed time (the MIPS denominator) would overshoot.
    app.set_on_done([&rig] { rig.engine().request_stop(); });
    counters::NodeCounterSource source(rig.node());
    auto events = counters::make_standard_event_set(source, rig.time());
    events.start();
    rig.engine().run_until([&] { return app.done(); }, to_nanos(10.0));
    return counters::snapshot(events).mips();
  };
  const double mips_equal = measure_mips(WorkPattern::kEqual);
  const double mips_unequal = measure_mips(WorkPattern::kUnequal);
  // Paper Table I: ~4100 vs ~79700 MIPS — an order of magnitude apart
  // with identical online performance.
  EXPECT_NEAR(mips_equal, 4080.0, 500.0);
  EXPECT_GT(mips_unequal, 10.0 * mips_equal);
}

}  // namespace
}  // namespace procap::apps
