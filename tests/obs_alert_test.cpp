// Tests for the declarative alert engine: the pending/firing/resolved
// state machine with `for:` holds, the three rule kinds, per-label alert
// instances, msgbus payload round-trips, the built-in rule catalog, the
// /alerts.json document, and the alert feedback paths into
// NodeResourceManager (degraded mode) and PowerPolicyDaemon (forced cap
// reprogramming).
#include "obs/alert.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/rig.hpp"
#include "model/progress_model.hpp"
#include "msgbus/message.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "policy/daemon.hpp"
#include "policy/nrm.hpp"
#include "policy/schedule_shapes.hpp"
#include "progress/monitor.hpp"

namespace procap {
namespace {

using obs::Alert;
using obs::AlertEngine;
using obs::AlertRule;
using obs::AlertState;
using obs::AlertTransition;
using obs::Registry;
using obs::TimeSeriesStore;

TEST(AlertPayload, RoundTripsThroughJson) {
  AlertTransition tr;
  tr.t = 12 * kNanosPerSecond;
  tr.rule = "telemetry_health";
  tr.labels = "app=\"lammps\"";
  tr.severity = "critical";
  tr.from = AlertState::kPending;
  tr.to = AlertState::kFiring;
  tr.value = 2.0;
  tr.degrades_control = true;
  const auto parsed = obs::parse_alert_payload(tr.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rule, tr.rule);
  EXPECT_EQ(parsed->labels, tr.labels);
  EXPECT_EQ(parsed->severity, tr.severity);
  EXPECT_EQ(parsed->from, tr.from);
  EXPECT_EQ(parsed->to, tr.to);
  EXPECT_EQ(parsed->t, tr.t);
  EXPECT_DOUBLE_EQ(parsed->value, tr.value);
  EXPECT_TRUE(parsed->degrades_control);
  EXPECT_TRUE(parsed->fired());
  EXPECT_FALSE(parsed->resolved());
}

TEST(AlertPayload, RejectsJunkWithoutThrowing) {
  EXPECT_FALSE(obs::parse_alert_payload("").has_value());
  EXPECT_FALSE(obs::parse_alert_payload("{not json").has_value());
  EXPECT_FALSE(obs::parse_alert_payload("[1,2,3]").has_value());
  EXPECT_FALSE(obs::parse_alert_payload("{}").has_value());
  // Valid JSON, bogus states.
  EXPECT_FALSE(obs::parse_alert_payload(
                   "{\"rule\":\"r\",\"from\":\"hot\",\"to\":\"cold\"}")
                   .has_value());
  // States fine, rule missing.
  EXPECT_FALSE(obs::parse_alert_payload(
                   "{\"from\":\"pending\",\"to\":\"firing\"}")
                   .has_value());
}

TEST(AlertCatalog, BuiltinRulesCoverTheLiveControlNeeds) {
  const std::vector<AlertRule> rules = obs::builtin_rules();
  ASSERT_EQ(rules.size(), 5u);
  std::vector<std::string> names;
  names.reserve(rules.size());
  for (const AlertRule& rule : rules) {
    names.push_back(rule.name);
  }
  for (const char* expected :
       {"progress_stall", "cap_effect_slo", "power_overshoot",
        "telemetry_health", "telemetry_absent"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  // The telemetry rules are the ones that push controllers open-loop.
  for (const AlertRule& rule : rules) {
    EXPECT_EQ(rule.degrades_control, rule.name == "telemetry_health" ||
                                         rule.name == "telemetry_absent")
        << rule.name;
  }
}

TEST(AlertCatalog, StateNamesAreStable) {
  EXPECT_STREQ(obs::to_string(AlertState::kInactive), "inactive");
  EXPECT_STREQ(obs::to_string(AlertState::kPending), "pending");
  EXPECT_STREQ(obs::to_string(AlertState::kFiring), "firing");
}

#if !defined(PROCAP_OBS_DISABLED)

// The registry is process-global; each test uses its own metric names.
class AlertEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::set_enabled(true);
    Registry::global().reset_values();
  }
};

AlertRule gauge_rule(const std::string& name, const std::string& metric,
                     double threshold, Nanos hold = 0) {
  AlertRule rule;
  rule.name = name;
  rule.metric = metric;
  rule.kind = AlertRule::Kind::kThreshold;
  rule.op = AlertRule::Op::kAbove;
  rule.threshold = threshold;
  rule.hold = hold;
  return rule;
}

TEST_F(AlertEngineTest, ThresholdHoldsThenFiresThenResolves) {
  auto& gauge = Registry::global().gauge("alert_test.hold_gauge");
  TimeSeriesStore store(Registry::global(), 32);
  AlertEngine engine(store);
  engine.add_rule(gauge_rule("hold_rule", "alert_test.hold_gauge", 10.0,
                             2 * kNanosPerSecond));
  EXPECT_EQ(engine.rule_count(), 1u);

  gauge.set(20.0);
  store.sample(0);
  engine.evaluate(0);
  auto alerts = engine.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].state, AlertState::kPending);
  EXPECT_TRUE(engine.firing().empty());

  engine.evaluate(kNanosPerSecond);  // hold not yet satisfied
  EXPECT_EQ(engine.alerts()[0].state, AlertState::kPending);

  engine.evaluate(2 * kNanosPerSecond);  // held for 2 s: fire
  alerts = engine.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].state, AlertState::kFiring);
  EXPECT_EQ(alerts[0].since, 2 * kNanosPerSecond);
  EXPECT_DOUBLE_EQ(alerts[0].value, 20.0);
  EXPECT_EQ(engine.firing().size(), 1u);

  gauge.set(5.0);
  store.sample(3 * kNanosPerSecond);
  engine.evaluate(3 * kNanosPerSecond);
  EXPECT_EQ(engine.alerts()[0].state, AlertState::kInactive);
  EXPECT_TRUE(engine.firing().empty());

  const auto transitions = engine.transitions();
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].to, AlertState::kPending);
  EXPECT_TRUE(transitions[1].fired());
  EXPECT_TRUE(transitions[2].resolved());
}

TEST_F(AlertEngineTest, ZeroHoldFiresWithinOneEvaluation) {
  auto& gauge = Registry::global().gauge("alert_test.instant_gauge");
  TimeSeriesStore store(Registry::global(), 32);
  AlertEngine engine(store);
  engine.add_rule(gauge_rule("instant", "alert_test.instant_gauge", 1.0));
  gauge.set(2.0);
  store.sample(kNanosPerSecond);
  engine.evaluate(kNanosPerSecond);
  ASSERT_EQ(engine.firing().size(), 1u);
  // pending and firing recorded in the same evaluation round
  const auto transitions = engine.transitions();
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].t, transitions[1].t);
}

TEST_F(AlertEngineTest, RateRuleComparesPerSecondDelta) {
  auto& counter = Registry::global().counter("alert_test.rate_counter");
  TimeSeriesStore store(Registry::global(), 32);
  AlertEngine engine(store);
  AlertRule rule;
  rule.name = "hot_counter";
  rule.metric = "alert_test.rate_counter";
  rule.kind = AlertRule::Kind::kRate;
  rule.op = AlertRule::Op::kAbove;
  rule.threshold = 50.0;
  engine.add_rule(rule);

  counter.inc(10);
  store.sample(0);  // first sample: rate 0
  engine.evaluate(0);
  EXPECT_TRUE(engine.firing().empty());

  counter.inc(200);
  store.sample(kNanosPerSecond);  // 200/s
  engine.evaluate(kNanosPerSecond);
  ASSERT_EQ(engine.firing().size(), 1u);
  EXPECT_DOUBLE_EQ(engine.firing()[0].value, 200.0);

  store.sample(2 * kNanosPerSecond);  // no increments: rate 0
  engine.evaluate(2 * kNanosPerSecond);
  EXPECT_TRUE(engine.firing().empty());
  EXPECT_TRUE(engine.transitions().back().resolved());
}

TEST_F(AlertEngineTest, AbsenceNeedsEvidenceThenFiresAndResolves) {
  auto& counter = Registry::global().counter("alert_test.absent_counter");
  TimeSeriesStore store(Registry::global(), 32);
  AlertEngine engine(store);
  AlertRule rule;
  rule.name = "gone_quiet";
  rule.metric = "alert_test.absent_counter";
  rule.kind = AlertRule::Kind::kAbsence;
  rule.absence_window = 4 * kNanosPerSecond;
  engine.add_rule(rule);

  // Short history: no retained point older than the window yet, so the
  // rule cannot conclude absence even though nothing is moving.
  counter.inc();
  store.sample(0);
  engine.evaluate(0);
  EXPECT_TRUE(engine.firing().empty());

  counter.inc();
  store.sample(kNanosPerSecond);
  for (int s = 2; s <= 5; ++s) {
    store.sample(s * kNanosPerSecond);  // flat: the counter stopped
  }
  engine.evaluate(5 * kNanosPerSecond);
  // Baseline at t = 1 s (<= now - window), newest at 5 s, delta 0: fire.
  ASSERT_EQ(engine.firing().size(), 1u);
  EXPECT_DOUBLE_EQ(engine.firing()[0].value, 0.0);

  counter.inc();
  store.sample(6 * kNanosPerSecond);
  engine.evaluate(6 * kNanosPerSecond);
  EXPECT_TRUE(engine.firing().empty());
  EXPECT_TRUE(engine.transitions().back().resolved());
}

TEST_F(AlertEngineTest, AbsenceFiresForNeverRegisteredInstrument) {
  // Regression: an absence rule watching an instrument that never
  // registered used to stay silently inactive forever — the engine only
  // iterated existing series, so "reporter never came up" looked exactly
  // like "nothing to watch".  With the store's first sample time as the
  // evidence anchor, a full window of sampling with no series must fire.
  TimeSeriesStore store(Registry::global(), 32);
  AlertEngine engine(store);
  AlertRule rule;
  rule.name = "never_came_up";
  rule.metric = "alert_test.never_registered";
  rule.kind = AlertRule::Kind::kAbsence;
  rule.absence_window = 4 * kNanosPerSecond;
  engine.add_rule(rule);

  // No samples at all: the store has observed nothing, so nothing can be
  // concluded — same evidence bar as the dropped-series case.
  engine.evaluate(10 * kNanosPerSecond);
  EXPECT_TRUE(engine.alerts().empty());

  for (int s = 0; s <= 3; ++s) {
    store.sample(s * kNanosPerSecond);
    engine.evaluate(s * kNanosPerSecond);
    EXPECT_TRUE(engine.firing().empty())
        << "fired before sampling covered the window";
  }

  store.sample(4 * kNanosPerSecond);
  engine.evaluate(4 * kNanosPerSecond);  // sampling since 0, window 4 s
  ASSERT_EQ(engine.firing().size(), 1u);
  EXPECT_EQ(engine.firing()[0].rule, "never_came_up");

  // The instrument finally registers (under per-app labels, so the
  // synthesized instance's label set never gains a series of its own);
  // the never-registered alert must resolve.
  auto& counter = Registry::global().counter(
      "alert_test.never_registered", obs::prometheus_label("app", "late"));
  counter.inc();
  store.sample(5 * kNanosPerSecond);
  engine.evaluate(5 * kNanosPerSecond);
  EXPECT_TRUE(engine.firing().empty());
  EXPECT_TRUE(engine.transitions().back().resolved());
}

TEST_F(AlertEngineTest, QuantileStatReadsHistogramP95) {
  auto& hist = Registry::global().histogram("alert_test.latency_hist",
                                            {1e3, 1e6, 1e9});
  TimeSeriesStore store(Registry::global(), 32);
  AlertEngine engine(store);
  AlertRule rule = gauge_rule("slow_p95", "alert_test.latency_hist", 1e3);
  rule.stat = obs::RuleStat::kP95;
  engine.add_rule(rule);

  for (int i = 0; i < 100; ++i) {
    hist.observe(5e5);  // all in the (1e3, 1e6] bucket
  }
  store.sample(kNanosPerSecond);
  engine.evaluate(kNanosPerSecond);
  ASSERT_EQ(engine.firing().size(), 1u);
  EXPECT_GT(engine.firing()[0].value, 1e3);
  EXPECT_LE(engine.firing()[0].value, 1e6);
}

TEST_F(AlertEngineTest, SinkSeesOnlyFiredAndResolvedTransitions) {
  auto& gauge = Registry::global().gauge("alert_test.sink_gauge");
  TimeSeriesStore store(Registry::global(), 32);
  AlertEngine engine(store);
  engine.add_rule(gauge_rule("sink_rule", "alert_test.sink_gauge", 10.0,
                             2 * kNanosPerSecond));
  std::vector<AlertTransition> sunk;
  engine.set_sink([&sunk](const AlertTransition& tr) { sunk.push_back(tr); });

  gauge.set(20.0);
  store.sample(0);
  engine.evaluate(0);                    // -> pending: no sink call
  engine.evaluate(2 * kNanosPerSecond);  // -> firing
  gauge.set(0.0);
  store.sample(3 * kNanosPerSecond);
  engine.evaluate(3 * kNanosPerSecond);  // -> resolved

  ASSERT_EQ(sunk.size(), 2u);
  EXPECT_TRUE(sunk[0].fired());
  EXPECT_TRUE(sunk[1].resolved());
  EXPECT_EQ(engine.transitions().size(), 3u);
  // The sink payload survives the msgbus round-trip intact.
  const auto parsed = obs::parse_alert_payload(sunk[0].to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rule, "sink_rule");
  EXPECT_TRUE(parsed->fired());
}

TEST_F(AlertEngineTest, EveryLabelSetGetsItsOwnAlertInstance) {
  const std::string label_a = obs::prometheus_label("app", "a");
  const std::string label_b = obs::prometheus_label("app", "b");
  auto& gauge_a = Registry::global().gauge("alert_test.labelled", label_a);
  auto& gauge_b = Registry::global().gauge("alert_test.labelled", label_b);
  TimeSeriesStore store(Registry::global(), 32);
  AlertEngine engine(store);
  engine.add_rule(gauge_rule("per_app", "alert_test.labelled", 10.0));

  gauge_a.set(20.0);
  gauge_b.set(5.0);
  store.sample(kNanosPerSecond);
  engine.evaluate(kNanosPerSecond);

  EXPECT_EQ(engine.alerts().size(), 2u);
  const auto firing = engine.firing();
  ASSERT_EQ(firing.size(), 1u);
  EXPECT_EQ(firing[0].labels, label_a);
}

TEST_F(AlertEngineTest, UnsampledMetricsAreSkipped) {
  TimeSeriesStore store(Registry::global(), 32);
  AlertEngine engine(store);
  engine.add_rule(gauge_rule("ghost", "alert_test.never_sampled", 1.0));
  engine.evaluate(kNanosPerSecond);
  EXPECT_TRUE(engine.alerts().empty());
  EXPECT_TRUE(engine.transitions().empty());
}

TEST_F(AlertEngineTest, WriteJsonProducesAValidDocument) {
  auto& gauge = Registry::global().gauge("alert_test.json_gauge");
  TimeSeriesStore store(Registry::global(), 32);
  AlertEngine engine(store);
  engine.add_rule(gauge_rule("json_rule", "alert_test.json_gauge", 1.0));
  gauge.set(2.0);
  store.sample(kNanosPerSecond);
  engine.evaluate(kNanosPerSecond);

  std::ostringstream os;
  engine.write_json(os);
  const std::string text = os.str();
  ASSERT_TRUE(obs::json::valid(text)) << text;
  const auto doc = obs::json::parse(text);
  EXPECT_DOUBLE_EQ(doc.number_or("rules", 0.0), 1.0);
  EXPECT_GE(doc.number_or("transitions", 0.0), 2.0);
  const auto* alerts = doc.find("alerts");
  ASSERT_NE(alerts, nullptr);
  ASSERT_EQ(alerts->array.size(), 1u);
  EXPECT_EQ(alerts->array[0].string_or("rule", ""), "json_rule");
  EXPECT_EQ(alerts->array[0].string_or("state", ""), "firing");
}

#endif  // !PROCAP_OBS_DISABLED

// --- Alert feedback into the controllers (msgbus::alert_topic) ---------

using Mode = policy::NodeResourceManager::Mode;

model::ModelParams lammps_params() {
  model::ModelParams params;
  params.beta = 1.0;
  params.alpha = 2.0;
  params.p_core_max = 149.0;
  params.r_max = 800000.0;
  return params;
}

AlertTransition health_transition(Nanos t, AlertState from, AlertState to) {
  AlertTransition tr;
  tr.t = t;
  tr.rule = "telemetry_health";
  tr.labels = "app=\"lammps\"";
  tr.severity = "critical";
  tr.from = from;
  tr.to = to;
  tr.degrades_control = true;
  return tr;
}

TEST(AlertFeedback, NrmDegradesWhileAlertFiresAndReengagesOnResolve) {
  exp::SimRig rig;
  auto app = apps::lammps();
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), "lammps", rig.time());
  policy::NodeResourceManager nrm(rig.rapl(), monitor, rig.time());
  nrm.attach(rig.engine());
  nrm.watch_alerts(rig.broker().make_sub());
  nrm.set_node_budget(120.0);
  nrm.set_progress_target(0.6 * lammps_params().r_max, lammps_params());

  rig.engine().run_for(to_nanos(10.0));
  ASSERT_EQ(nrm.mode(), Mode::kProgressTarget);
  EXPECT_EQ(nrm.degrading_alerts(), 0u);

  auto pub = rig.broker().make_pub();
  // A firing alert without degrades_control must not move the mode.
  AlertTransition benign = health_transition(
      rig.time().now(), AlertState::kPending, AlertState::kFiring);
  benign.rule = "power_overshoot";
  benign.degrades_control = false;
  pub->publish(msgbus::alert_topic(benign.rule), benign.to_json());
  rig.engine().run_for(to_nanos(2.0));
  EXPECT_EQ(nrm.mode(), Mode::kProgressTarget);

  // The degrading alert fires: open-loop fallback, exactly as for a
  // locally unhealthy signal.
  const AlertTransition fire = health_transition(
      rig.time().now(), AlertState::kPending, AlertState::kFiring);
  pub->publish(msgbus::alert_topic(fire.rule), fire.to_json());
  rig.engine().run_for(to_nanos(3.0));
  EXPECT_EQ(nrm.mode(), Mode::kDegraded);
  EXPECT_EQ(nrm.degrading_alerts(), 1u);
  EXPECT_GE(nrm.degraded_entries(), 1u);
  ASSERT_TRUE(nrm.current_cap().has_value());
  EXPECT_LE(*nrm.current_cap(), 120.0);

  // Resolution unblocks the reengagement hysteresis.
  const AlertTransition resolve = health_transition(
      rig.time().now(), AlertState::kFiring, AlertState::kInactive);
  pub->publish(msgbus::alert_topic(resolve.rule), resolve.to_json());
  rig.engine().run_for(to_nanos(6.0));
  EXPECT_EQ(nrm.degrading_alerts(), 0u);
  EXPECT_EQ(nrm.mode(), Mode::kProgressTarget);
  EXPECT_GE(nrm.reengagements(), 1u);
}

TEST(AlertFeedback, DaemonReprogramsCapOnPowerOvershootAlert) {
  exp::SimRig rig;
  auto app = apps::lammps();
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 1);
  policy::PowerPolicyDaemon daemon(
      rig.rapl(), rig.time(),
      std::make_unique<policy::ConstantCap>(90.0, 2.0));
  daemon.attach(rig.engine());
  daemon.watch_alerts(rig.broker().make_sub());

  rig.engine().run_for(to_nanos(6.0));
  ASSERT_TRUE(daemon.current_cap().has_value());
  EXPECT_EQ(daemon.alert_reactuations(), 0u);

  auto pub = rig.broker().make_pub();
  // Junk on the alert topic must be ignored, not crash the daemon.
  pub->publish(msgbus::alert_topic("power_overshoot"), "{not json");
  AlertTransition fire;
  fire.t = rig.time().now();
  fire.rule = "power_overshoot";
  fire.severity = "warning";
  fire.from = AlertState::kPending;
  fire.to = AlertState::kFiring;
  pub->publish(msgbus::alert_topic(fire.rule), fire.to_json());

  rig.engine().run_for(to_nanos(2.0));
  // Exactly one forced reprogram of the (unchanged) cap.
  EXPECT_EQ(daemon.alert_reactuations(), 1u);
  ASSERT_TRUE(daemon.current_cap().has_value());
  EXPECT_DOUBLE_EQ(*daemon.current_cap(), 90.0);
}

}  // namespace
}  // namespace procap
