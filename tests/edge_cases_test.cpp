// Edge-case and failure-injection tests across modules: behaviours that
// the mainline tests do not reach (schedule hand-off, feedback-only NRM,
// unusual workload registries, late samples, beta = 0 inversions, CANDLE
// unpredictability).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/measure.hpp"
#include "exp/rig.hpp"
#include "model/progress_model.hpp"
#include "policy/daemon.hpp"
#include "policy/nrm.hpp"
#include "policy/schedule_shapes.hpp"
#include "progress/monitor.hpp"
#include "progress/reporter.hpp"
#include "progress/windower.hpp"

namespace procap {
namespace {

TEST(DaemonEdge, ScheduleHandOffTakesEffect) {
  exp::SimRig rig;
  const auto model = apps::lammps();
  apps::SimApp app(rig.package(), rig.broker(), model.spec, 1);
  policy::PowerPolicyDaemon daemon(
      rig.rapl(), rig.time(), std::make_unique<policy::UncappedSchedule>());
  daemon.attach(rig.engine());
  rig.engine().run_for(to_nanos(3.0));
  EXPECT_FALSE(rig.package().firmware().enforcing());
  // Swap schedules mid-flight; elapsed-time origin resets.
  daemon.set_schedule(std::make_unique<policy::ConstantCap>(90.0, 2.0));
  rig.engine().run_for(to_nanos(1.5));
  EXPECT_FALSE(rig.package().firmware().enforcing());  // still in delay
  rig.engine().run_for(to_nanos(2.0));
  EXPECT_TRUE(rig.package().firmware().enforcing());
  EXPECT_THROW(daemon.set_schedule(nullptr), std::invalid_argument);
}

TEST(NrmEdge, PureFeedbackTargetWithoutModelSeed) {
  exp::SimRig rig;
  const auto model = apps::lammps();
  apps::SimApp app(rig.package(), rig.broker(), model.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), "lammps", rig.time());
  policy::NodeResourceManager nrm(rig.rapl(), monitor, rig.time());
  nrm.attach(rig.engine());
  // Start from a hard budget, then switch to a feedback-only target.
  nrm.set_power_budget(140.0);
  nrm.set_progress_target(0.75 * 886000.0, std::nullopt);
  rig.engine().run_for(to_nanos(60.0));
  const double recent =
      nrm.progress_series().mean_in(to_nanos(45.0), to_nanos(60.0));
  EXPECT_NEAR(recent, 0.75 * 886000.0, 0.10 * 0.75 * 886000.0);
}

TEST(NrmEdge, BudgetModeIgnoresProgress) {
  exp::SimRig rig;
  const auto model = apps::lammps();
  apps::SimApp app(rig.package(), rig.broker(), model.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), "lammps", rig.time());
  policy::NodeResourceManager nrm(rig.rapl(), monitor, rig.time());
  nrm.attach(rig.engine());
  nrm.set_power_budget(100.0);
  rig.engine().run_for(to_nanos(10.0));
  ASSERT_TRUE(nrm.current_cap().has_value());
  EXPECT_DOUBLE_EQ(*nrm.current_cap(), 100.0);  // no feedback drift
}

TEST(WindowerEdge, LateSampleJoinsOpenWindow) {
  progress::RateWindower windower(0, kNanosPerSecond);
  windower.close_up_to(to_nanos(2.0));  // windows [0,1) and [1,2) closed
  // A sample stamped inside an already-closed window cannot reopen it; it
  // lands in the open window (documented live-monitor semantics).
  windower.add(to_nanos(0.5), 5.0);
  windower.close_up_to(to_nanos(3.0));
  ASSERT_EQ(windower.windows(), 3U);
  EXPECT_DOUBLE_EQ(windower.rates()[0].value, 0.0);
  EXPECT_DOUBLE_EQ(windower.rates()[2].value, 5.0);
}

TEST(ModelEdge, MemoryBoundInversionsAreTotal) {
  model::ModelParams params;
  params.beta = 0.0;
  params.p_core_max = 50.0;
  params.r_max = 10.0;
  EXPECT_DOUBLE_EQ(model::core_power_for_progress(params, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(model::pkg_cap_for_progress(params, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(model::progress_at_pkg_cap(params, 1e-9), 10.0);
}

TEST(AppsEdge, ByNameHonorsIterationBounds) {
  exp::SimRig rig;
  const auto model = apps::by_name("stream", 8);
  apps::SimApp app(rig.package(), rig.broker(), model.spec, 1);
  const bool finished =
      rig.engine().run_until([&] { return app.done(); }, to_nanos(5.0));
  EXPECT_TRUE(finished);
  EXPECT_EQ(app.iterations_completed(), 8);
}

TEST(AppsEdge, CandleEpochCountIsSeedDependent) {
  // The paper's Category-1/2 argument for CANDLE: the epoch count cannot
  // be predicted, only the online rate can.
  std::set<long> epoch_counts;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    exp::SimRig rig;
    auto model = apps::candle();
    // 20x faster epochs keep the test quick; the stopping rule is the
    // same accuracy threshold.
    model.spec.phases[0].cycles /= 20.0;
    model.spec.phases[0].mem_stall /= 20.0;
    model.spec.phases[0].bytes /= 20.0;
    apps::SimApp app(rig.package(), rig.broker(), model.spec, seed);
    ASSERT_TRUE(
        rig.engine().run_until([&] { return app.done(); }, to_nanos(30.0)));
    epoch_counts.insert(app.iterations_completed());
  }
  EXPECT_GE(epoch_counts.size(), 3U);  // genuinely unpredictable
}

TEST(AppsEdge, OpenmcFullRunsInactiveThenActive) {
  exp::SimRig rig;
  auto model = apps::openmc();
  model.spec.phases[1].iterations = 5;  // shorten the active phase
  apps::SimApp app(rig.package(), rig.broker(), model.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), "openmc", rig.time());
  rig.engine().every(kNanosPerSecond, [&](Nanos) { monitor.poll(); });
  ASSERT_TRUE(
      rig.engine().run_until([&] { return app.done(); }, to_nanos(30.0)));
  monitor.poll();
  EXPECT_EQ(app.iterations_completed(), 10 + 5);
  EXPECT_TRUE(monitor.phase_rates().contains(0));  // inactive
  EXPECT_TRUE(monitor.phase_rates().contains(1));  // active
  EXPECT_DOUBLE_EQ(monitor.total_work(), 15.0 * 100000.0);
}

TEST(MsgbusEdge, UnsubscribedQueueStillDrains) {
  ManualTimeSource clock;
  msgbus::Broker broker(clock);
  auto pub = broker.make_pub();
  auto sub = broker.make_sub();
  sub->subscribe("a/");
  pub->publish("a/x", "1");
  sub->unsubscribe("a/");
  // The already-queued message is still deliverable after unsubscribe.
  EXPECT_TRUE(sub->try_recv().has_value());
}

TEST(ExpEdge, RunTracesWindowHelpers) {
  exp::RunOptions options;
  options.duration = 8.0;
  const auto traces = exp::run_under_schedule(
      apps::lammps(), std::make_unique<policy::ConstantCap>(90.0, 2.0),
      options);
  EXPECT_GT(traces.mean_rate(4.0, 8.0), 0.0);
  EXPECT_NEAR(traces.mean_power(5.0, 8.0), 90.0, 5.0);
  EXPECT_LT(traces.mean_frequency(5.0, 8.0), 3700.0);
  EXPECT_FALSE(traces.app_finished);  // unbounded workload
  EXPECT_GT(traces.total_progress, 0.0);
}

}  // namespace
}  // namespace procap
