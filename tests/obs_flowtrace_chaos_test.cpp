// Chaos lane for the cap-to-effect trace pipeline: kill part of the
// cluster mid-run and check the flows opened toward the dead nodes are
// orphaned (not silently dropped), that the orphans survive sampling,
// and that obs_report's --traces analysis surfaces them — the operator
// answer to "which decisions never produced an effect, and why".
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/manager.hpp"
#include "fault/plan.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace procap::obs {
namespace {

using procap::cluster::ClusterConfig;
using procap::cluster::ClusterPowerManager;

TEST(FlowTraceChaos, NodeDeathOrphansSurfaceInTraceReport) {
  ClusterConfig config;
  config.nodes = 128;
  config.global_budget = 118.0 * config.nodes;
  config.jobs = config.nodes / 8;
  config.strategy = "demand";
  config.seed = 77;
  config.threads = 4;
  // 10% of the cluster dies for good at t = 5 s — mid-run, so grants
  // issued to the victims in the preceding epochs are still in flight.
  std::istringstream plan(
      "seed 5\n"
      "node 5 inf crash frac 0.10\n");
  config.plan = procap::fault::FaultPlan::parse(plan);

  FlowTracerOptions options;
  options.seed = config.seed;
  FlowTracer tracer(options);
  ClusterPowerManager manager(config);
  manager.set_tracer(&tracer);
  tracer.set_meta("strategy", config.strategy);
  tracer.set_meta("seed", std::to_string(config.seed));
  manager.run(20);

  const FlowTracerStats stats = tracer.stats();
  ASSERT_GT(manager.deaths(), 0u);
  ASSERT_GT(stats.closed, 0u);
  ASSERT_GT(stats.orphaned, 0u);

  // Every orphan is kept, with a machine-readable reason, and at least
  // one of them is a death orphan (stale grants may add more).
  std::uint64_t kept_orphans = 0;
  bool saw_death = false;
  for (const FlowRecord& flow : tracer.kept_flows()) {
    if (flow.state != FlowState::kOrphaned) {
      continue;
    }
    ++kept_orphans;
    EXPECT_EQ(flow.keep, KeepReason::kOrphan);
    ASSERT_NE(flow.orphan_reason, nullptr);
    saw_death = saw_death || std::string(flow.orphan_reason) == "node_death";
  }
  EXPECT_GT(kept_orphans, 0u);
  EXPECT_TRUE(saw_death);

  // Round-trip through the dump format obs_report --traces consumes.
  const std::string path = ::testing::TempDir() + "flow_chaos_dump.json";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    tracer.write_traces_json(out);
  }
  const FlowDumpReport report = summarize_flow_dump(path);
  EXPECT_EQ(report.orphaned, stats.orphaned);
  EXPECT_EQ(report.closed, stats.closed);
  EXPECT_EQ(report.strategy, "demand");
  std::uint64_t reported_orphans = 0;
  for (const FlowRow& row : report.flows) {
    if (row.state == "orphaned") {
      ++reported_orphans;
      EXPECT_FALSE(row.orphan_reason.empty());
    }
  }
  EXPECT_EQ(reported_orphans, kept_orphans);

  // The printed analysis names the orphan budget so a chaos run's
  // lost decisions cannot hide in an aggregate.
  std::ostringstream os;
  print_flow_reports({report}, os);
  EXPECT_NE(os.str().find("orphaned"), std::string::npos);
  EXPECT_NE(os.str().find("node_death"), std::string::npos);
}

}  // namespace
}  // namespace procap::obs
