// Tests for live time-series retention: ring-buffer wraparound, store
// sampling semantics (rates, quantiles, late-registered instruments),
// the Sampler's interval gating, the engine flush hook, sampler
// determinism on the simulated clock, and JSON output validity.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/sketch.hpp"
#include "sim/engine.hpp"

namespace {

using procap::Nanos;
using procap::kNanosPerSecond;
using procap::obs::Registry;
using procap::obs::RingBuffer;
using procap::obs::Sampler;
using procap::obs::SeriesKind;
using procap::obs::TimeSeriesStore;
using procap::obs::TsPoint;

TsPoint point_at(Nanos t, double value) {
  TsPoint p;
  p.t = t;
  p.value = value;
  return p;
}

TEST(RingBufferTest, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer(0), std::invalid_argument);
}

TEST(RingBufferTest, FillsThenWrapsEvictingOldest) {
  RingBuffer ring(4);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 10; ++i) {
    ring.push(point_at(i, static_cast<double>(i)));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.pushed(), 10u);
  // Oldest-first: points 6, 7, 8, 9 survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(ring.at(i).value, static_cast<double>(6 + i)) << i;
  }
  EXPECT_DOUBLE_EQ(ring.latest().value, 9.0);
  EXPECT_THROW((void)ring.at(4), std::out_of_range);
}

TEST(RingBufferTest, PartialFillKeepsInsertionOrder) {
  RingBuffer ring(8);
  ring.push(point_at(1, 10.0));
  ring.push(point_at(2, 20.0));
  ring.push(point_at(3, 30.0));
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_DOUBLE_EQ(ring.at(0).value, 10.0);
  EXPECT_DOUBLE_EQ(ring.at(2).value, 30.0);
}

#if !defined(PROCAP_OBS_DISABLED)

class TimeSeriesStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::set_enabled(true);
    Registry::global().reset_values();
  }
};

TEST_F(TimeSeriesStoreTest, SamplesCountersWithRates) {
  auto& counter = Registry::global().counter("ts_test.rate_counter");
  TimeSeriesStore store(Registry::global(), 16);
  counter.inc(100);
  store.sample(0);
  counter.inc(300);
  store.sample(2 * kNanosPerSecond);

  const auto latest = store.latest("ts_test.rate_counter");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->value, 400.0);
  // 300 increments over 2 s.
  EXPECT_DOUBLE_EQ(latest->rate, 150.0);
}

TEST_F(TimeSeriesStoreTest, GaugesCarryNoRate) {
  auto& gauge = Registry::global().gauge("ts_test.gauge");
  TimeSeriesStore store(Registry::global(), 16);
  gauge.set(5.0);
  store.sample(0);
  gauge.set(50.0);
  store.sample(kNanosPerSecond);
  const auto latest = store.latest("ts_test.gauge");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->value, 50.0);
  EXPECT_DOUBLE_EQ(latest->rate, 0.0);
}

TEST_F(TimeSeriesStoreTest, HistogramsCarryQuantiles) {
  auto& hist = Registry::global().histogram("ts_test.hist",
                                            {1.0, 10.0, 100.0});
  TimeSeriesStore store(Registry::global(), 16);
  for (int i = 0; i < 100; ++i) {
    hist.observe(5.0);
  }
  store.sample(kNanosPerSecond);
  const auto latest = store.latest("ts_test.hist");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->value, 100.0);  // count
  EXPECT_GT(latest->p50, 1.0);
  EXPECT_LE(latest->p50, 10.0);
  EXPECT_LE(latest->p95, latest->p99);
}

TEST_F(TimeSeriesStoreTest, InstrumentsRegisteredLateGetTheirOwnRing) {
  TimeSeriesStore store(Registry::global(), 16);
  Registry::global().counter("ts_test.early").inc();
  store.sample(0);
  const auto early_count = store.series_count();
  Registry::global().counter("ts_test.late_arrival").inc();
  store.sample(kNanosPerSecond);
  EXPECT_GT(store.series_count(), early_count);
  const auto late = store.latest("ts_test.late_arrival");
  ASSERT_TRUE(late.has_value());
  EXPECT_DOUBLE_EQ(late->value, 1.0);
}

TEST_F(TimeSeriesStoreTest, SeriesFilterAndSince) {
  auto& counter = Registry::global().counter("ts_test.filtered");
  TimeSeriesStore store(Registry::global(), 16);
  for (int i = 0; i < 5; ++i) {
    counter.inc();
    store.sample(i * kNanosPerSecond);
  }
  const auto all = store.series("ts_test.filtered");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].points.size(), 5u);
  EXPECT_EQ(all[0].kind, SeriesKind::kCounter);
  const auto recent = store.series("ts_test.filtered", 3 * kNanosPerSecond);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].points.size(), 2u);
}

TEST_F(TimeSeriesStoreTest, WriteJsonIsValidAndCarriesMeta) {
  Registry::global().counter("ts_test.json_counter").inc(7);
  Registry::global().histogram("ts_test.json_hist", {1.0, 2.0}).observe(1.5);
  TimeSeriesStore store(Registry::global(), 16);
  store.set_meta("app", "we\"ird\napp");
  store.sample(kNanosPerSecond);
  std::ostringstream os;
  store.write_json(os);
  const std::string text = os.str();
  ASSERT_TRUE(procap::obs::json::valid(text)) << text;
  const auto doc = procap::obs::json::parse(text);
  const auto* meta = doc.find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->string_or("app", ""), "we\"ird\napp");
  EXPECT_GE(doc.number_or("samples", 0.0), 1.0);
  const auto* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_FALSE(series->array.empty());
}

TEST_F(TimeSeriesStoreTest, SketchSeriesCarryKindAndQuantiles) {
  auto& sketch = Registry::global().sketch("ts_test.sketch");
  TimeSeriesStore store(Registry::global(), 16);
  for (int i = 1; i <= 1000; ++i) {
    sketch.observe(static_cast<double>(i));
  }
  store.sample(kNanosPerSecond);
  const auto series = store.series("ts_test.sketch");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].kind, SeriesKind::kSketch);
  ASSERT_EQ(series[0].points.size(), 1u);
  const TsPoint& point = series[0].points[0];
  EXPECT_DOUBLE_EQ(point.value, 1000.0);  // count
  EXPECT_NEAR(point.p50, 500.0, 500.0 * 0.03);
  EXPECT_LE(point.p50, point.p95);
  EXPECT_LE(point.p95, point.p99);
}

TEST_F(TimeSeriesStoreTest, SeriesLabelsFilterSelectsSubstring) {
  Registry::global().counter("ts_test.per_node", "node=\"1\"").inc(10);
  Registry::global().counter("ts_test.per_node", "node=\"2\"").inc(20);
  TimeSeriesStore store(Registry::global(), 16);
  store.sample(0);
  const auto all = store.series("ts_test.per_node");
  ASSERT_EQ(all.size(), 2u);
  const auto one = store.series("ts_test.per_node", 0, "node=\"1\"");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].labels, "node=\"1\"");
  EXPECT_DOUBLE_EQ(one[0].points.at(0).value, 10.0);
  EXPECT_TRUE(store.series("ts_test.per_node", 0, "node=\"9\"").empty());
}

TEST_F(TimeSeriesStoreTest, WriteJsonHonorsNameAndLabelFilters) {
  Registry::global().counter("ts_test.wj.keep", "node=\"3\"").inc(1);
  Registry::global().counter("ts_test.wj.keep", "node=\"4\"").inc(2);
  Registry::global().counter("ts_test.wj.drop").inc(3);
  TimeSeriesStore store(Registry::global(), 16);
  store.sample(kNanosPerSecond);
  std::ostringstream os;
  store.write_json(os, 0, "ts_test.wj.keep", "node=\"3\"");
  const std::string text = os.str();
  ASSERT_TRUE(procap::obs::json::valid(text)) << text;
  const auto doc = procap::obs::json::parse(text);
  const auto* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->array.size(), 1u);
  EXPECT_EQ(series->array[0].string_or("name", ""), "ts_test.wj.keep");
  EXPECT_EQ(series->array[0].string_or("labels", ""), "node=\"3\"");
}

TEST_F(TimeSeriesStoreTest, SamplerGatesOnInterval) {
  TimeSeriesStore store(Registry::global(), 16);
  Sampler sampler(store, kNanosPerSecond);
  sampler.on_flush(0);  // first call always samples
  sampler.on_flush(kNanosPerSecond / 2);
  EXPECT_EQ(sampler.samples_taken(), 1u);
  sampler.on_flush(kNanosPerSecond);
  EXPECT_EQ(sampler.samples_taken(), 2u);
  sampler.on_flush(kNanosPerSecond + 1);
  EXPECT_EQ(sampler.samples_taken(), 2u);
  EXPECT_EQ(store.samples_taken(), 2u);
}

TEST_F(TimeSeriesStoreTest, EngineFlushDrivesInstalledSampler) {
  TimeSeriesStore store(Registry::global(), 64);
  Sampler sampler(store, kNanosPerSecond);
  sampler.install();
  {
    procap::sim::Engine engine;
    engine.run_for(10 * kNanosPerSecond);
  }
  // Flushes land every 4096 ticks (~4.1 s at 1 ms dt) plus the run-end
  // flush: at least two samples over 10 s.
  EXPECT_GE(sampler.samples_taken(), 2u);
  const auto ticks = store.latest("sim.ticks");
  ASSERT_TRUE(ticks.has_value());
  sampler.uninstall();
  const auto before = sampler.samples_taken();
  {
    procap::sim::Engine engine;
    engine.run_for(5 * kNanosPerSecond);
  }
  EXPECT_EQ(sampler.samples_taken(), before);
}

TEST_F(TimeSeriesStoreTest, SamplerIsDeterministicOnSimClock) {
  // Two identical runs must sample at identical simulated timestamps
  // with identical sim-deterministic rates (cumulative values differ —
  // the registry is process-global — but deltas cannot).
  auto run_once = [](std::vector<TsPoint>& out) {
    TimeSeriesStore store(Registry::global(), 64);
    Sampler sampler(store, kNanosPerSecond);
    sampler.install();
    {
      procap::sim::Engine engine;
      engine.run_for(10 * kNanosPerSecond);
    }
    sampler.uninstall();
    const auto series = store.series("sim.ticks");
    ASSERT_EQ(series.size(), 1u);
    out = series[0].points;
  };
  std::vector<TsPoint> first, second;
  run_once(first);
  run_once(second);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].t, second[i].t) << i;
    EXPECT_DOUBLE_EQ(first[i].rate, second[i].rate) << i;
  }
}

#else  // PROCAP_OBS_DISABLED

TEST(TimeSeriesDisabled, NotifyFlushIsInertStub) {
  // The noobs build must compile and run the flush hook as a no-op.
  procap::obs::notify_flush(kNanosPerSecond);
  SUCCEED();
}

#endif  // PROCAP_OBS_DISABLED

}  // namespace
