// Chaos coverage for the live alert pipeline (ctest labels: chaos;obs):
// a fault-injected telemetry outage on the reporter->monitor link must
// raise the degrades_control health alerts (telemetry_health via the
// graded signal, telemetry_absent via the stopped sample counter) while
// the outage lasts, publish only firing/resolved transitions through the
// sink, and resolve everything once the link heals.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/suite.hpp"
#include "exp/measure.hpp"
#include "fault/plan.hpp"
#include "obs/alert.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "policy/schedule_shapes.hpp"
#include "progress/health.hpp"
#include "sim/engine.hpp"

namespace procap {
namespace {

#if !defined(PROCAP_OBS_DISABLED)

TEST(AlertChaos, TelemetryOutageRaisesAndResolvesHealthAlerts) {
  obs::Registry::set_enabled(true);
  obs::Registry::global().reset_values();

  // One 10 s burst outage in the middle of the run: long enough for the
  // absence rule to gather evidence at the ~4 s flush-driven sampling
  // cadence, with a healthy tail for every alert to resolve.
  std::istringstream is(
      "seed 31\n"
      "link 10 20 outage\n");
  const fault::FaultPlan plan = fault::FaultPlan::parse(is);

  obs::TimeSeriesStore store(obs::Registry::global(), 256);
  obs::Sampler sampler(store, kNanosPerSecond);
  obs::AlertEngine alerts(store);
  alerts.add_builtin_rules();
  std::vector<obs::AlertTransition> sunk;
  alerts.set_sink(
      [&sunk](const obs::AlertTransition& tr) { sunk.push_back(tr); });

  exp::RunOptions options;
  options.duration = 48.0;
  options.fault_plan = &plan;
  options.on_setup = [&](exp::LiveRun& live) {
    sampler.install();
    live.engine.every(kNanosPerSecond,
                      [&alerts](Nanos now) { alerts.evaluate(now); });
  };
  const exp::RunTraces traces = exp::run_under_schedule(
      apps::lammps(), std::make_unique<policy::ConstantCap>(100.0, 2.0),
      options);
  sampler.uninstall();

  // The outage actually emptied the link.
  EXPECT_GT(traces.link_faults.outage_dropped, 0u);

  // Both degrades_control alerts fired during the outage and resolved
  // after it.
  Nanos health_fired_at = -1;
  Nanos health_resolved_at = -1;
  bool absent_fired = false;
  bool absent_resolved = false;
  for (const auto& tr : sunk) {
    if (tr.rule == "telemetry_health") {
      if (tr.fired() && health_fired_at < 0) {
        health_fired_at = tr.t;
        EXPECT_TRUE(tr.degrades_control);
      }
      if (tr.resolved()) {
        health_resolved_at = tr.t;
      }
    } else if (tr.rule == "telemetry_absent") {
      absent_fired = absent_fired || tr.fired();
      absent_resolved = absent_resolved || tr.resolved();
    }
  }
  ASSERT_GE(health_fired_at, 0) << "telemetry_health never fired";
  EXPECT_GE(health_fired_at, to_nanos(10.0));
  EXPECT_LT(health_fired_at, to_nanos(30.0));
  ASSERT_GE(health_resolved_at, 0) << "telemetry_health never resolved";
  EXPECT_GT(health_resolved_at, health_fired_at);
  EXPECT_TRUE(absent_fired);
  EXPECT_TRUE(absent_resolved);

  // Sink contract: only firing / resolved transitions reach the bus —
  // pending never leaks to the controllers.
  for (const auto& tr : sunk) {
    EXPECT_TRUE(tr.fired() || tr.resolved())
        << tr.rule << " " << obs::to_string(tr.from) << " -> "
        << obs::to_string(tr.to);
  }

  // Quiet again by the end of the run: nothing firing, signal healthy.
  EXPECT_TRUE(alerts.firing().empty());
  EXPECT_EQ(traces.health.grade, progress::SignalHealth::kHealthy);
}

#else  // PROCAP_OBS_DISABLED

TEST(AlertChaos, DisabledBuildSkips) {
  GTEST_SKIP() << "observability compiled out (PROCAP_OBS=OFF)";
}

#endif  // PROCAP_OBS_DISABLED

}  // namespace
}  // namespace procap
