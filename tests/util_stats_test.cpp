// Tests for streaming and batch statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace procap {
namespace {

TEST(StreamingStats, EmptyIsZeroed) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StreamingStats, KnownSequence) {
  StreamingStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  Rng rng(3);
  StreamingStats all;
  StreamingStats a;
  StreamingStats b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i < 400 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmptySides) {
  StreamingStats a;
  StreamingStats b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty.merge(non-empty)
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  StreamingStats c;
  a.merge(c);  // non-empty.merge(empty)
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_EQ(a.count(), 2U);
}

TEST(StreamingStats, CvIsRelativeSpread) {
  StreamingStats s;
  s.add(9.0);
  s.add(11.0);
  EXPECT_NEAR(s.cv(), std::sqrt(2.0) / 10.0, 1e-12);
}

TEST(MovingAverage, WindowEviction) {
  MovingAverage ma(3);
  ma.add(1.0);
  ma.add(2.0);
  ma.add(3.0);
  EXPECT_TRUE(ma.full());
  EXPECT_DOUBLE_EQ(ma.mean(), 2.0);
  ma.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(ma.mean(), 5.0);
  EXPECT_EQ(ma.size(), 3U);
}

TEST(MovingAverage, RejectsZeroCapacity) {
  EXPECT_THROW(MovingAverage(0), std::invalid_argument);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceGivesZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(LinearFit, RecoversLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 7.0);
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, RequiresTwoPoints) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)linear_fit(one, one), std::invalid_argument);
}

TEST(Mape, KnownValue) {
  const std::vector<double> measured{10.0, 20.0};
  const std::vector<double> predicted{11.0, 18.0};
  // |1/10| = 10%, |2/20| = 10% -> mean 10%.
  EXPECT_NEAR(mape(measured, predicted), 10.0, 1e-12);
}

TEST(Mape, SkipsNearZeroMeasured) {
  const std::vector<double> measured{0.0, 10.0};
  const std::vector<double> predicted{5.0, 11.0};
  EXPECT_NEAR(mape(measured, predicted), 10.0, 1e-12);
}

TEST(Rmse, KnownValue) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_NEAR(rmse(a, b), std::sqrt(12.5), 1e-12);
}

TEST(CrossCorrelation, DetectsLag) {
  // y is x delayed by 2 samples.
  std::vector<double> x;
  std::vector<double> y;
  Rng rng(5);
  std::vector<double> base;
  for (int i = 0; i < 200; ++i) {
    base.push_back(rng.normal());
  }
  for (int i = 2; i < 200; ++i) {
    x.push_back(base[static_cast<std::size_t>(i)]);
    y.push_back(base[static_cast<std::size_t>(i - 2)]);
  }
  EXPECT_GT(cross_correlation(x, y, 2), 0.95);
  EXPECT_LT(std::abs(cross_correlation(x, y, 0)), 0.3);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile({1.0}, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace procap
