// Tests for the PAPI-like counters module.
#include <gtest/gtest.h>

#include "counters/counters.hpp"
#include "counters/derived.hpp"
#include "hw/node.hpp"
#include "util/time.hpp"

namespace procap::counters {
namespace {

class CountersTest : public ::testing::Test {
 protected:
  CountersTest() : source_(node_) {}

  void load_and_run(Seconds seconds) {
    for (unsigned c = 0; c < node_.cpu_count(); ++c) {
      node_.core(c).set_idle_callback([this](unsigned core, Nanos) {
        node_.core(core).push_compute(3.3e7, 6.6e7);       // IPC 2
        node_.core(core).push_memory(1e-3, 6.4e5, 1e5);    // 10k misses
      });
    }
    run(seconds);
  }

  void run(Seconds seconds) {
    for (Nanos t = 0; t < to_nanos(seconds); t += msec(1)) {
      node_.step(clock_.now(), msec(1));
      clock_.advance(msec(1));
    }
  }

  hw::Node node_;
  ManualTimeSource clock_;
  NodeCounterSource source_;
};

TEST_F(CountersTest, EventNames) {
  EXPECT_EQ(event_name(Event::kTotInstructions), "PAPI_TOT_INS");
  EXPECT_EQ(event_name(Event::kL3CacheMisses), "PAPI_L3_TCM");
  EXPECT_EQ(event_name(Event::kTotCycles), "PAPI_TOT_CYC");
  EXPECT_EQ(event_name(Event::kRefCycles), "PAPI_REF_CYC");
}

TEST_F(CountersTest, SourceExposesAllCpus) {
  EXPECT_EQ(source_.cpu_count(), 24U);
}

TEST_F(CountersTest, DeltasOverInterval) {
  EventSet set(source_, clock_);
  set.add(Event::kTotInstructions);
  load_and_run(0.1);
  set.start();
  const double at_start = set.read(Event::kTotInstructions);
  EXPECT_DOUBLE_EQ(at_start, 0.0);
  run(0.1);
  EXPECT_GT(set.read(Event::kTotInstructions), 0.0);
}

TEST_F(CountersTest, ElapsedUsesTimeSource) {
  EventSet set(source_, clock_);
  set.add(Event::kTotCycles);
  set.start();
  clock_.advance(to_nanos(2.0));
  EXPECT_DOUBLE_EQ(set.elapsed(), 2.0);
}

TEST_F(CountersTest, ReadBeforeStartThrows) {
  EventSet set(source_, clock_);
  set.add(Event::kTotCycles);
  EXPECT_THROW((void)set.read(), std::logic_error);
  EXPECT_THROW((void)set.elapsed(), std::logic_error);
}

TEST_F(CountersTest, AddAfterStartThrows) {
  EventSet set(source_, clock_);
  set.add(Event::kTotCycles);
  set.start();
  EXPECT_THROW(set.add(Event::kRefCycles), std::logic_error);
}

TEST_F(CountersTest, ReadUnknownEventThrows) {
  EventSet set(source_, clock_);
  set.add(Event::kTotCycles);
  set.start();
  EXPECT_THROW((void)set.read(Event::kL3CacheMisses), std::invalid_argument);
}

TEST_F(CountersTest, CpuSubsetRestrictsCounting) {
  EventSet all(source_, clock_);
  all.add(Event::kTotInstructions);
  EventSet one(source_, clock_, {0});
  one.add(Event::kTotInstructions);
  all.start();
  one.start();
  load_and_run(0.1);
  const double everything = all.read(Event::kTotInstructions);
  const double single = one.read(Event::kTotInstructions);
  EXPECT_GT(single, 0.0);
  EXPECT_NEAR(single * 24.0, everything, everything * 0.05);
}

TEST_F(CountersTest, EmptyCpuSetRejected) {
  EXPECT_THROW(EventSet(source_, clock_, {}), std::invalid_argument);
}

TEST_F(CountersTest, DerivedMetricsFromWorkload) {
  auto set = make_standard_event_set(source_, clock_);
  set.start();
  load_and_run(1.0);
  const DerivedMetrics m = snapshot(set);
  // Workload: IPC 2 in compute, misses = bytes/64 = 1e4 per iteration.
  EXPECT_GT(m.ipc(), 1.5);
  EXPECT_LT(m.ipc(), 2.2);
  EXPECT_GT(m.mips(), 1000.0);
  // MPO = 1e4 / 6.61e7 per iteration ~ 1.5e-4.
  EXPECT_NEAR(m.mpo(), 1.5e-4, 5e-5);
  EXPECT_NEAR(m.elapsed, 1.0, 1e-9);
}

TEST(DerivedMetrics, ZeroDenominatorsAreSafe) {
  const DerivedMetrics m{};
  EXPECT_DOUBLE_EQ(m.mips(), 0.0);
  EXPECT_DOUBLE_EQ(m.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(m.mpo(), 0.0);
}

}  // namespace
}  // namespace procap::counters
