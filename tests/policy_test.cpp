// Tests for capping schedules, the power-policy daemon, and the NRM.
#include <gtest/gtest.h>

#include <memory>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/rig.hpp"
#include "policy/daemon.hpp"
#include "policy/nrm.hpp"
#include "policy/schedule_shapes.hpp"
#include "progress/monitor.hpp"

namespace procap::policy {
namespace {

TEST(Schemes, UncappedAlwaysNull) {
  UncappedSchedule s;
  EXPECT_FALSE(s.cap_at(0.0).has_value());
  EXPECT_FALSE(s.cap_at(1e6).has_value());
}

TEST(Schemes, ConstantWithDelay) {
  ConstantCap s(80.0, 5.0);
  EXPECT_FALSE(s.cap_at(4.9).has_value());
  EXPECT_EQ(s.cap_at(5.0), 80.0);
  EXPECT_EQ(s.cap_at(100.0), 80.0);
}

TEST(Schemes, ConstantRejectsNonPositive) {
  EXPECT_THROW(ConstantCap(0.0), std::invalid_argument);
}

TEST(Schemes, LinearDecreasesToFloor) {
  LinearDecreasingCap s(150.0, 60.0, 10.0, 5.0);
  EXPECT_FALSE(s.cap_at(2.0).has_value());
  EXPECT_NEAR(*s.cap_at(5.0), 150.0, 1e-12);
  EXPECT_NEAR(*s.cap_at(10.0), 100.0, 1e-12);
  EXPECT_NEAR(*s.cap_at(14.0), 60.0, 1e-12);   // hits the floor
  EXPECT_NEAR(*s.cap_at(100.0), 60.0, 1e-12);  // holds there
}

TEST(Schemes, LinearValidation) {
  EXPECT_THROW(LinearDecreasingCap(50.0, 60.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LinearDecreasingCap(150.0, 60.0, 0.0), std::invalid_argument);
}

TEST(Schemes, StepAlternates) {
  StepCap s(std::nullopt, 70.0, 10.0, 10.0);
  EXPECT_FALSE(s.cap_at(0.0).has_value());
  EXPECT_FALSE(s.cap_at(9.9).has_value());
  EXPECT_EQ(s.cap_at(10.0), 70.0);
  EXPECT_EQ(s.cap_at(19.9), 70.0);
  EXPECT_FALSE(s.cap_at(20.0).has_value());  // period repeats
  EXPECT_EQ(s.cap_at(35.0), 70.0);
}

TEST(Schemes, StepWithHighValue) {
  StepCap s(Watts{120.0}, 70.0, 5.0, 5.0);
  EXPECT_EQ(s.cap_at(0.0), 120.0);
  EXPECT_EQ(s.cap_at(5.0), 70.0);
}

TEST(Schemes, StepValidation) {
  EXPECT_THROW(StepCap(Watts{50.0}, 70.0, 5.0, 5.0), std::invalid_argument);
  EXPECT_THROW(StepCap(std::nullopt, 70.0, 0.0, 5.0), std::invalid_argument);
}

TEST(Schemes, JaggedSawtooth) {
  JaggedCap s(150.0, 50.0, 10.0);
  EXPECT_NEAR(*s.cap_at(0.0), 150.0, 1e-12);
  EXPECT_NEAR(*s.cap_at(5.0), 100.0, 1e-12);
  EXPECT_NEAR(*s.cap_at(9.999), 50.0, 0.05);
  EXPECT_NEAR(*s.cap_at(10.0), 150.0, 1e-12);  // snaps back up
  EXPECT_NEAR(*s.cap_at(15.0), 100.0, 1e-12);
}

TEST(Schemes, JaggedValidation) {
  EXPECT_THROW(JaggedCap(50.0, 50.0, 1.0), std::invalid_argument);
  EXPECT_THROW(JaggedCap(150.0, 50.0, 0.0), std::invalid_argument);
}

TEST(Daemon, AppliesScheduleOncePerSecond) {
  exp::SimRig rig;
  auto app = apps::lammps();
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 1);
  PowerPolicyDaemon daemon(rig.rapl(), rig.time(),
                           std::make_unique<ConstantCap>(90.0, 3.0));
  daemon.attach(rig.engine());
  rig.engine().run_for(to_nanos(8.0));
  EXPECT_EQ(daemon.ticks(), 8U);
  ASSERT_TRUE(daemon.current_cap().has_value());
  EXPECT_DOUBLE_EQ(*daemon.current_cap(), 90.0);
  // MSR actually programmed.
  EXPECT_TRUE(rig.package().firmware().enforcing());
  EXPECT_NEAR(rig.package().firmware().limit().pl1.power, 90.0, 0.125);
  // Cap series: zeros before 3 s, 90 after.
  EXPECT_DOUBLE_EQ(daemon.cap_series()[0].value, 0.0);
  EXPECT_DOUBLE_EQ(daemon.cap_series()[5].value, 90.0);
}

TEST(Daemon, PowerSeriesTracksMeasuredPower) {
  exp::SimRig rig;
  auto app = apps::lammps();
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 1);
  PowerPolicyDaemon daemon(rig.rapl(), rig.time(),
                           std::make_unique<UncappedSchedule>());
  daemon.attach(rig.engine());
  rig.engine().run_for(to_nanos(6.0));
  // After the priming sample, measured power ~ uncapped compute load.
  EXPECT_NEAR(daemon.power_series().samples().back().value, 149.0, 10.0);
}

TEST(Daemon, UncappingClearsLimit) {
  exp::SimRig rig;
  auto app = apps::lammps();
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 1);
  // Step schedule returns to uncapped after 2 s.
  PowerPolicyDaemon daemon(rig.rapl(), rig.time(),
                           std::make_unique<StepCap>(std::nullopt, 70.0,
                                                     2.0, 2.0));
  daemon.attach(rig.engine());
  rig.engine().run_for(to_nanos(3.0));  // in the low phase
  EXPECT_TRUE(rig.package().firmware().enforcing());
  rig.engine().run_for(to_nanos(2.0));  // back in the high phase
  EXPECT_FALSE(rig.package().firmware().enforcing());
}

TEST(Daemon, NullScheduleRejected) {
  exp::SimRig rig;
  EXPECT_THROW(PowerPolicyDaemon(rig.rapl(), rig.time(),
                                 std::unique_ptr<CapSchedule>()),
               std::invalid_argument);
  EXPECT_THROW(PowerPolicyDaemon(rig.rapl(), rig.time(),
                                 std::unique_ptr<Controller>()),
               std::invalid_argument);
}

TEST(Nrm, HardBudgetAppliesImmediately) {
  exp::SimRig rig;
  auto app = apps::lammps();
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), "lammps", rig.time());
  NodeResourceManager nrm(rig.rapl(), monitor, rig.time());
  nrm.set_power_budget(85.0);
  EXPECT_TRUE(rig.package().firmware().enforcing());
  EXPECT_NEAR(rig.package().firmware().limit().pl1.power, 85.0, 0.125);
  nrm.clear_power_budget();
  EXPECT_FALSE(rig.package().firmware().enforcing());
}

TEST(Nrm, ProgressTargetConvergesNearTarget) {
  exp::SimRig rig;
  auto app = apps::lammps();
  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), "lammps", rig.time());
  NodeResourceManager nrm(rig.rapl(), monitor, rig.time());
  nrm.attach(rig.engine());

  // Ask for 80 % of the uncapped rate (~20 iter/s * 40000 = 800k/s).
  model::ModelParams params;
  params.beta = 1.0;
  params.alpha = 2.0;
  params.p_core_max = 149.0;
  params.r_max = 800000.0;
  const double target = 0.8 * params.r_max;
  nrm.set_progress_target(target, params);
  rig.engine().run_for(to_nanos(40.0));

  // Measured progress in the last windows is within 10 % of the target
  // and the node is genuinely capped below uncapped power.
  const double recent =
      nrm.progress_series().mean_in(to_nanos(30.0), to_nanos(40.0));
  EXPECT_NEAR(recent, target, 0.10 * target);
  ASSERT_TRUE(nrm.current_cap().has_value());
  EXPECT_LT(*nrm.current_cap(), 145.0);
}

}  // namespace
}  // namespace procap::policy
