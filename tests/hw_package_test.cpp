// Tests for the package power model, operating-point resolution, RAPL
// enforcement end-to-end, and the node's MSR wiring.
#include <gtest/gtest.h>

#include "hw/node.hpp"
#include "hw/package.hpp"
#include "msr/addresses.hpp"
#include "rapl/rapl.hpp"
#include "util/time.hpp"

namespace procap::hw {
namespace {

// Keep every core busy with compute work (beta ~ 1 workload).
void load_compute(Package& pkg) {
  for (unsigned c = 0; c < pkg.core_count(); ++c) {
    pkg.core(c).set_idle_callback([&pkg](unsigned core, Nanos) {
      pkg.core(core).push_compute(3.3e8, 3.3e8);  // ~100 ms chunks
    });
  }
}

// Keep every core mostly stalled with heavy traffic (memory-bound).
void load_memory(Package& pkg) {
  for (unsigned c = 0; c < pkg.core_count(); ++c) {
    pkg.core(c).set_idle_callback([&pkg](unsigned core, Nanos) {
      pkg.core(core).push_compute(0.37 * 3.3e7, 3.3e7);
      pkg.core(core).push_memory(0.0063, 4.0e7, 1e5);
    });
  }
}

void run(Package& pkg, Seconds seconds) {
  const Nanos dt = msec(1);
  for (Nanos now = 0; now < to_nanos(seconds); now += dt) {
    pkg.step(now, dt);
  }
}

// Per-tick means over a run; bulk-synchronous loads oscillate tick to
// tick (all cores compute, then all stall), so assertions about power
// composition must look at averages, not the last tick.
struct RunAverages {
  double bandwidth_gbps = 0.0;
  Watts core_dynamic = 0.0;
  Watts uncore = 0.0;
  Watts power = 0.0;
};

RunAverages run_averaged(Package& pkg, Seconds seconds) {
  const Nanos dt = msec(1);
  RunAverages avg;
  std::size_t ticks = 0;
  for (Nanos now = 0; now < to_nanos(seconds); now += dt) {
    pkg.step(now, dt);
    avg.bandwidth_gbps += pkg.bandwidth_gbps();
    avg.core_dynamic += pkg.breakdown().core_dynamic;
    avg.uncore += pkg.breakdown().uncore;
    avg.power += pkg.power();
    ++ticks;
  }
  const auto n = static_cast<double>(ticks);
  avg.bandwidth_gbps /= n;
  avg.core_dynamic /= n;
  avg.uncore /= n;
  avg.power /= n;
  return avg;
}

TEST(Package, IdlePowerIsStaticFloor) {
  Package pkg(CpuSpec::skylake24());
  run(pkg, 0.1);
  const PowerBreakdown& b = pkg.breakdown();
  // Idle: near-zero dynamic, full static + uncore idle + base.
  EXPECT_LT(b.core_dynamic, 6.0);
  EXPECT_DOUBLE_EQ(b.core_static, 24.0 * 0.4);
  EXPECT_NEAR(b.uncore, 6.0, 0.5);
  EXPECT_NEAR(pkg.power(), 24.0, 5.0);
}

TEST(Package, ComputeBoundPowerNearDesignPoint) {
  Package pkg(CpuSpec::skylake24());
  load_compute(pkg);
  run(pkg, 0.5);
  // Design point: ~150 W for a fully compute-bound 24-core load, which
  // turbos to f_max while uncapped.
  EXPECT_NEAR(pkg.power(), 150.0, 8.0);
  EXPECT_DOUBLE_EQ(pkg.frequency(), mhz(3700));
}

TEST(Package, MemoryBoundBurnsUncorePower) {
  Package pkg(CpuSpec::skylake24());
  load_memory(pkg);
  const RunAverages avg = run_averaged(pkg, 0.5);
  EXPECT_GT(avg.bandwidth_gbps, 70.0);
  EXPECT_GT(avg.uncore, 25.0);
  // Stalled cores still burn most of their dynamic power, but less than
  // the fully compute-bound case (~129 W at turbo).
  EXPECT_LT(avg.core_dynamic, 115.0);
}

TEST(Package, EnergyIntegratesPower) {
  Package pkg(CpuSpec::skylake24());
  load_compute(pkg);
  run(pkg, 1.0);
  EXPECT_NEAR(pkg.energy(), pkg.power() * 1.0, pkg.power() * 0.05);
}

TEST(Package, DvfsRequestLowersFrequencyAndPower) {
  Package pkg(CpuSpec::skylake24());
  load_compute(pkg);
  run(pkg, 0.2);
  const Watts p_max = pkg.power();
  pkg.request_frequency(mhz(1600));
  run(pkg, 0.2);
  EXPECT_DOUBLE_EQ(pkg.frequency(), mhz(1600));
  EXPECT_LT(pkg.power(), p_max * 0.6);
}

TEST(Package, RaplCapConvergesOntoCap) {
  Package pkg(CpuSpec::skylake24());
  load_compute(pkg);
  rapl::PkgPowerLimit limit;
  limit.pl1.power = 100.0;
  limit.pl1.time_window = 0.01;
  limit.pl1.enabled = true;
  pkg.firmware().program(limit);
  run(pkg, 2.0);
  EXPECT_NEAR(pkg.firmware().running_average(), 100.0, 3.0);
  // Settles below the turbo band (uncapped would run at 3700).
  EXPECT_LT(pkg.frequency(), mhz(3500));
  EXPECT_GT(pkg.frequency(), mhz(1200));
}

TEST(Package, ApplicationAwareFrequencyUnderSameCap) {
  // Paper Fig. 2: under an identical cap, the compute-bound app runs at a
  // HIGHER frequency than the memory-bound one (whose uncore eats budget).
  rapl::PkgPowerLimit limit;
  limit.pl1.power = 100.0;
  limit.pl1.time_window = 0.01;
  limit.pl1.enabled = true;

  Package compute_pkg(CpuSpec::skylake24());
  load_compute(compute_pkg);
  compute_pkg.firmware().program(limit);
  run(compute_pkg, 3.0);

  Package memory_pkg(CpuSpec::skylake24());
  load_memory(memory_pkg);
  memory_pkg.firmware().program(limit);
  run(memory_pkg, 3.0);

  EXPECT_GT(compute_pkg.frequency(), memory_pkg.frequency() + mhz(100));
}

TEST(Package, StringentCapEngagesDutyCycling) {
  Package pkg(CpuSpec::skylake24());
  load_compute(pkg);
  rapl::PkgPowerLimit limit;
  // Below the DVFS floor (~29 W) but above the static floor (~21 W),
  // so duty cycling must engage and can settle on the cap.
  limit.pl1.power = 25.0;
  limit.pl1.time_window = 0.01;
  limit.pl1.enabled = true;
  pkg.firmware().program(limit);
  run(pkg, 3.0);
  EXPECT_DOUBLE_EQ(pkg.frequency(), mhz(1200));
  EXPECT_LT(pkg.duty(), 1.0);
  EXPECT_NEAR(pkg.firmware().running_average(), 25.0, 3.0);
}

TEST(Package, CountersAggregateAcrossCores) {
  Package pkg(CpuSpec::skylake24());
  load_compute(pkg);
  run(pkg, 0.1);
  const CoreCounters total = pkg.total_counters();
  EXPECT_GT(total.instructions, 0.0);
  EXPECT_GT(total.core_cycles, 0.0);
  pkg.reset_counters();
  EXPECT_DOUBLE_EQ(pkg.total_counters().instructions, 0.0);
}

// ---- Node / MSR wiring -------------------------------------------------

TEST(Node, CpuNumberingAndLeaders) {
  NodeSpec spec;
  spec.packages = 2;
  Node node(spec);
  EXPECT_EQ(node.cpu_count(), 48U);
  EXPECT_EQ(node.package_leaders(), (std::vector<unsigned>{0, 24}));
  // Global CPU 25 is core 1 of package 1: work pushed through the node
  // handle must land on that core and be visible via the package handle.
  node.core(25).push_compute(1e6, 2e6);
  node.package(1).advance_to(to_nanos(0.01), nullptr);
  EXPECT_DOUBLE_EQ(node.package(1).core(1).counters().instructions, 2e6);
  EXPECT_DOUBLE_EQ(node.package(1).core(0).counters().instructions, 0.0);
}

TEST(Node, EnergyStatusMsrReflectsPackageEnergy) {
  Node node;
  ManualTimeSource clock;
  rapl::RaplInterface rapl(node.msr(), clock, node.package_leaders());
  for (Nanos t = 0; t < to_nanos(1.0); t += msec(1)) {
    node.step(t, msec(1));
  }
  const Joules j = rapl.pkg_energy();
  EXPECT_NEAR(j, node.package().energy(), 0.01);
  EXPECT_GT(j, 10.0);  // idle floor is ~24 W for a second
}

TEST(Node, PowerLimitWriteReachesFirmware) {
  Node node;
  ManualTimeSource clock;
  rapl::RaplInterface rapl(node.msr(), clock, node.package_leaders());
  rapl.set_pkg_cap(90.0);
  EXPECT_TRUE(node.package().firmware().enforcing());
  EXPECT_NEAR(node.package().firmware().limit().pl1.power, 90.0, 0.125);
  rapl.clear_pkg_cap();
  EXPECT_FALSE(node.package().firmware().enforcing());
}

TEST(Node, PerfCtlWriteSetsRequestedFrequency) {
  Node node;
  ManualTimeSource clock;
  rapl::RaplInterface rapl(node.msr(), clock, node.package_leaders());
  rapl.set_frequency(mhz(2100));
  EXPECT_DOUBLE_EQ(node.package().requested_frequency(), mhz(2100));
  node.step(0, msec(1));
  EXPECT_DOUBLE_EQ(rapl.frequency(), mhz(2100));
}

TEST(Node, ClockModulationWriteSetsDuty) {
  Node node;
  ManualTimeSource clock;
  rapl::RaplInterface rapl(node.msr(), clock, node.package_leaders());
  rapl.set_clock_modulation(0.5);
  EXPECT_DOUBLE_EQ(node.package().requested_duty(), 0.5);
}

TEST(Node, AperfMperfRatioTracksEffectiveFrequency) {
  Node node;
  node.package().request_frequency(mhz(1650));  // half of nominal max
  // Load one core with compute so APERF advances.
  node.core(0).set_idle_callback([&node](unsigned, Nanos) {
    node.core(0).push_compute(1e9, 1e9);
  });
  for (Nanos t = 0; t < to_nanos(0.5); t += msec(1)) {
    node.step(t, msec(1));
  }
  const auto aperf = static_cast<double>(
      node.msr().read(0, msr::kIa32Aperf));
  const auto mperf = static_cast<double>(
      node.msr().read(0, msr::kIa32Mperf));
  // APERF counts at 1650 MHz while busy; MPERF at the fixed 100 MHz ref.
  EXPECT_NEAR(aperf / mperf, 16.5, 0.5);
}

}  // namespace
}  // namespace procap::hw
