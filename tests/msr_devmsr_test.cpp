// Tests for the /dev/cpu MSR backend.  The CI container has no msr
// module, so these tests exercise availability probing, the error paths,
// and — via a temporary regular file standing in for the character
// device — the pread/pwrite offset arithmetic.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "msr/devmsr.hpp"

namespace procap::msr {
namespace {

TEST(DevMsr, AvailabilityProbeDoesNotThrow) {
  // Whatever the host, the probe must answer without throwing.
  const bool available = DevMsr::available();
  if (!available) {
    EXPECT_THROW(DevMsr(1), MsrError);
  }
}

TEST(DevMsr, MissingDeviceThrows) {
  EXPECT_FALSE(DevMsr::available("/nonexistent/cpu/%u/msr"));
  EXPECT_THROW(DevMsr(1, "/nonexistent/cpu/%u/msr"), MsrError);
}

TEST(DevMsr, ZeroCpusRejected) {
  EXPECT_THROW(DevMsr(0, "/nonexistent/%u"), MsrError);
}

class FakeDeviceFile : public ::testing::Test {
 protected:
  FakeDeviceFile() {
    pattern_ = testing::TempDir() + "/procap_fake_msr_cpu%u";
    char path[512];
    std::snprintf(path, sizeof(path), pattern_.c_str(), 0U);
    path_ = path;
    // A sparse file: "registers" live at their byte offsets.
    std::ofstream file(path_, std::ios::binary);
    file.seekp(0x700);
    const std::uint64_t zero = 0;
    file.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
  }

  ~FakeDeviceFile() override { std::remove(path_.c_str()); }

  std::string pattern_;
  std::string path_;
};

TEST_F(FakeDeviceFile, ReadWriteAtRegisterOffsets) {
  ASSERT_TRUE(DevMsr::available(pattern_));
  DevMsr dev(1, pattern_);
  EXPECT_EQ(dev.cpu_count(), 1U);
  dev.write(0, 0x610, 0x1234'5678'9ABC'DEF0ULL);
  EXPECT_EQ(dev.read(0, 0x610), 0x1234'5678'9ABC'DEF0ULL);
  // A far-apart register is independent storage.  (On the real character
  // device the offset is the MSR *index*, so even adjacent registers are
  // independent; a regular stand-in file overlaps byte-wise, so this test
  // keeps its registers >= 8 apart.)
  dev.write(0, 0x620, 42);
  EXPECT_EQ(dev.read(0, 0x620), 42U);
  EXPECT_EQ(dev.read(0, 0x610), 0x1234'5678'9ABC'DEF0ULL);
}

TEST_F(FakeDeviceFile, CpuOutOfRangeThrows) {
  DevMsr dev(1, pattern_);
  EXPECT_THROW((void)dev.read(1, 0x610), MsrError);
}

TEST_F(FakeDeviceFile, MissingSecondCpuFailsLazily) {
  // Only CPU 0's file exists: construction succeeds, CPU 1 access throws.
  DevMsr dev(2, pattern_);
  dev.write(0, 0x10, 7);
  EXPECT_EQ(dev.read(0, 0x10), 7U);
  EXPECT_THROW((void)dev.read(1, 0x10), MsrError);
}

}  // namespace
}  // namespace procap::msr
