// Tests for exp::sweep — the parallel trial scheduler.
//
// The load-bearing contract: a parallel sweep's per-trial results are
// bit-identical to the serial path for the same seeds (trials share no
// mutable state), results land in grid order whatever the completion
// order, and a throwing trial is captured without sinking the sweep.
#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "apps/suite.hpp"
#include "policy/schedule_shapes.hpp"

namespace procap::exp {
namespace {

using minithread::ThreadPool;

// A short but real measurement grid: every trial builds a full SimRig.
CapImpactGrid small_grid() {
  CapImpactGrid grid;
  grid.app = apps::by_name("lammps");
  grid.caps = {60.0, 100.0};
  grid.seeds = {1, 2, 3};
  grid.uncapped_for = 6.0;
  grid.capped_for = 8.0;
  grid.settle = 2.0;
  return grid;
}

void expect_identical(const SweepResult<CapImpact>& a,
                      const SweepResult<CapImpact>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-identical, not approximately equal: same trial code, same
    // seeds, no shared state — thread count must not perturb anything.
    EXPECT_EQ(a.at(i).delta, b.at(i).delta) << "trial " << i;
    EXPECT_EQ(a.at(i).rate_uncapped, b.at(i).rate_uncapped) << "trial " << i;
    EXPECT_EQ(a.at(i).rate_capped, b.at(i).rate_capped) << "trial " << i;
    EXPECT_EQ(a.at(i).power_uncapped, b.at(i).power_uncapped) << "trial " << i;
    EXPECT_EQ(a.at(i).power_capped, b.at(i).power_capped) << "trial " << i;
  }
}

TEST(ExpSweep, ParallelEqualsSerialAcrossSeeds) {
  const CapImpactGrid grid = small_grid();
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 8;
  const auto serial_result = sweep_cap_impact(grid, serial);
  const auto parallel_result = sweep_cap_impact(grid, parallel);
  EXPECT_EQ(serial_result.threads, 1u);
  EXPECT_EQ(parallel_result.threads, 6u);  // clamped to the 6 trials
  expect_identical(serial_result, parallel_result);
}

TEST(ExpSweep, StaticScheduleMatchesDynamic) {
  const CapImpactGrid grid = small_grid();
  SweepOptions dynamic;
  dynamic.threads = 4;
  dynamic.schedule = ThreadPool::Schedule::kDynamic;
  SweepOptions fixed;
  fixed.threads = 4;
  fixed.schedule = ThreadPool::Schedule::kStatic;
  expect_identical(sweep_cap_impact(grid, dynamic),
                   sweep_cap_impact(grid, fixed));
}

TEST(ExpSweep, DeterministicGridOrderUnderDynamicScheduling) {
  // Trials finish out of order (early indices do more work); results
  // must still land at their grid index.
  SweepOptions options;
  options.threads = 8;
  options.schedule = ThreadPool::Schedule::kDynamic;
  constexpr std::size_t kTrials = 96;
  const std::function<double(std::size_t)> trial = [](std::size_t i) {
    double x = static_cast<double>(kTrials - i);
    for (int k = 0; k < 1000 * static_cast<int>(kTrials - i); ++k) {
      x = std::sqrt(x * x + 1e-9);
    }
    return x + static_cast<double>(i) * 1000.0;
  };
  const auto parallel = sweep<double>(kTrials, trial, options);
  options.threads = 1;
  const auto serial = sweep<double>(kTrials, trial, options);
  ASSERT_EQ(parallel.size(), kTrials);
  for (std::size_t i = 0; i < kTrials; ++i) {
    EXPECT_EQ(parallel.at(i), serial.at(i)) << "trial " << i;
  }
}

TEST(ExpSweep, PerTrialExceptionIsCapturedAndSweepContinues) {
  SweepOptions options;
  options.threads = 4;
  const auto result = sweep<int>(
      9,
      [](std::size_t i) -> int {
        if (i % 3 == 0) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
        return static_cast<int>(i) * 10;
      },
      options);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.failures.size(), 3u);
  EXPECT_EQ(result.failures[0].index, 0u);
  EXPECT_EQ(result.failures[1].index, 3u);
  EXPECT_EQ(result.failures[2].index, 6u);
  EXPECT_EQ(result.failures[1].message, "boom 3");
  // Surviving trials are unaffected by their neighbours' failures.
  EXPECT_EQ(result.at(1), 10);
  EXPECT_EQ(result.at(8), 80);
  EXPECT_FALSE(result.trials[0].has_value());
  EXPECT_THROW((void)result.at(0), std::runtime_error);
  EXPECT_THROW((void)result.at(99), std::out_of_range);
}

TEST(ExpSweep, ProgressCallbackIsSerializedAndComplete) {
  SweepOptions options;
  options.threads = 8;
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  options.on_progress = [&calls](std::size_t done, std::size_t total) {
    calls.emplace_back(done, total);  // serialized: no lock needed here
  };
  constexpr std::size_t kTrials = 40;
  const auto result = sweep<int>(
      kTrials, [](std::size_t i) { return static_cast<int>(i); }, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(calls.size(), kTrials);
  for (const auto& [done, total] : calls) {
    EXPECT_GE(done, 1u);
    EXPECT_LE(done, kTrials);
    EXPECT_EQ(total, kTrials);
  }
  EXPECT_EQ(calls.back().first, kTrials);
}

TEST(ExpSweep, SweepRunsMatchesDirectCall) {
  std::vector<ScheduleTrial> trials;
  for (const std::uint64_t seed : {1u, 7u}) {
    ScheduleTrial trial;
    trial.app = apps::by_name("stream");
    trial.make_schedule = [] {
      return std::make_unique<policy::ConstantCap>(80.0, 4.0);
    };
    trial.options.duration = 10.0;
    trial.options.seed = seed;
    trials.push_back(std::move(trial));
  }
  SweepOptions options;
  options.threads = 2;
  const auto swept = sweep_runs(trials, options);
  ASSERT_TRUE(swept.ok());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    RunOptions direct_options;
    direct_options.duration = 10.0;
    direct_options.seed = trials[i].options.seed;
    const RunTraces direct = run_under_schedule(
        trials[i].app, std::make_unique<policy::ConstantCap>(80.0, 4.0),
        direct_options);
    EXPECT_EQ(swept.at(i).total_progress, direct.total_progress);
    EXPECT_EQ(swept.at(i).progress.size(), direct.progress.size());
    EXPECT_EQ(swept.at(i).mean_power(5.0, 10.0),
              direct.mean_power(5.0, 10.0));
  }
}

TEST(ExpSweep, MissingScheduleFactoryIsATrialFailure) {
  const auto result = sweep_runs(std::vector<ScheduleTrial>(1), {});
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].message.find("no schedule factory"),
            std::string::npos);
}

// The tsan target case: a full-width sweep of real SimRig trials at 8
// threads.  Run under the tsan preset (ctest -L tsan in build-tsan) this
// proves trial isolation — no data race between concurrent rigs, the
// obs registry, or the progress plumbing.
TEST(ExpSweep, EightThreadSimRigSweepIsRaceFree) {
  SweepOptions options;
  options.threads = 8;
  options.schedule = ThreadPool::Schedule::kDynamic;
  std::atomic<int> live{0};
  std::atomic<int> peak{0};
  const auto result = sweep<double>(
      24,
      [&](std::size_t i) {
        const int now = live.fetch_add(1, std::memory_order_acq_rel) + 1;
        int seen = peak.load(std::memory_order_relaxed);
        while (now > seen &&
               !peak.compare_exchange_weak(seen, now,
                                           std::memory_order_relaxed)) {
        }
        RunOptions run_options;
        run_options.duration = 5.0;
        run_options.seed = i + 1;
        const RunTraces traces = run_under_schedule(
            apps::by_name(i % 2 == 0 ? "lammps" : "stream"),
            std::make_unique<policy::ConstantCap>(70.0, 2.0), run_options);
        live.fetch_sub(1, std::memory_order_acq_rel);
        return traces.total_progress;
      },
      options);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_GT(result.at(i), 0.0) << "trial " << i;
  }
  EXPECT_LE(peak.load(), 8);
}

}  // namespace
}  // namespace procap::exp
