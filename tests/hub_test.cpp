// Tests for the auto-discovering MonitorHub and the shared RateWindower.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/rig.hpp"
#include "progress/hub.hpp"
#include "progress/reporter.hpp"
#include "progress/windower.hpp"

namespace procap::progress {
namespace {

// ---- RateWindower in isolation -----------------------------------------

TEST(RateWindower, RejectsNonPositiveWindow) {
  EXPECT_THROW(RateWindower(0, 0), std::invalid_argument);
}

TEST(RateWindower, ClosesWindowsWithZeroFill) {
  RateWindower w(0, kNanosPerSecond);
  w.add(to_nanos(0.5), 10.0);
  w.close_up_to(to_nanos(3.5));
  ASSERT_EQ(w.windows(), 3U);
  EXPECT_DOUBLE_EQ(w.rates()[0].value, 10.0);
  EXPECT_DOUBLE_EQ(w.rates()[1].value, 0.0);
  EXPECT_DOUBLE_EQ(w.rates()[2].value, 0.0);
  EXPECT_DOUBLE_EQ(w.total_work(), 10.0);
}

TEST(RateWindower, NonZeroOriginAlignsWindows) {
  RateWindower w(to_nanos(10.0), kNanosPerSecond);
  w.add(to_nanos(10.2), 4.0);
  w.close_up_to(to_nanos(11.0));
  ASSERT_EQ(w.windows(), 1U);
  EXPECT_EQ(w.rates()[0].t, to_nanos(10.0));
  EXPECT_DOUBLE_EQ(w.current_rate(), 4.0);
}

TEST(RateWindower, PhaseAttributionByDominantAmount) {
  RateWindower w(0, kNanosPerSecond);
  w.add(to_nanos(0.2), 1.0, 0);
  w.add(to_nanos(0.4), 5.0, 1);  // phase 1 dominates
  w.close_up_to(kNanosPerSecond);
  ASSERT_TRUE(w.phase_rates().contains(1));
  EXPECT_FALSE(w.phase_rates().contains(0));
  EXPECT_DOUBLE_EQ(w.phase_rates().at(1)[0].value, 6.0);
}

// ---- MonitorHub ---------------------------------------------------------

class HubTest : public ::testing::Test {
 protected:
  ManualTimeSource clock_;
  msgbus::Broker broker_{clock_};
};

TEST_F(HubTest, ValidatesArguments) {
  EXPECT_THROW(MonitorHub(nullptr, clock_), std::invalid_argument);
  EXPECT_THROW(MonitorHub(broker_.make_sub(), clock_, 0),
               std::invalid_argument);
}

TEST_F(HubTest, DiscoversApplicationsAsTheyPublish) {
  MonitorHub hub(broker_.make_sub(), clock_);
  EXPECT_TRUE(hub.applications().empty());
  Reporter a(broker_.make_pub(), {"alpha", "u"});
  Reporter b(broker_.make_pub(), {"beta", "u"});
  clock_.advance(to_nanos(0.5));
  a.report(2.0);
  hub.poll();
  EXPECT_EQ(hub.applications(), (std::vector<std::string>{"alpha"}));
  clock_.advance(to_nanos(0.2));
  b.report(3.0);
  hub.poll();
  EXPECT_EQ(hub.applications(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_TRUE(hub.knows("alpha"));
  EXPECT_FALSE(hub.knows("gamma"));
}

TEST_F(HubTest, PerAppRatesAreIndependent) {
  MonitorHub hub(broker_.make_sub(), clock_);
  Reporter fast(broker_.make_pub(), {"fast", "u"});
  Reporter slow(broker_.make_pub(), {"slow", "u"});
  for (int i = 0; i < 10; ++i) {
    clock_.advance(to_nanos(0.1));
    fast.report(1.0);
    if (i == 4) {
      slow.report(7.0);
    }
  }
  clock_.advance(to_nanos(0.5));  // now 1.5 s: the first windows closed
  hub.poll();
  EXPECT_DOUBLE_EQ(hub.current_rate("fast"), 9.0);  // 9 samples in [0,1)
  EXPECT_DOUBLE_EQ(hub.current_rate("slow"), 7.0);
  EXPECT_DOUBLE_EQ(hub.current_rate("unknown"), 0.0);
  EXPECT_EQ(hub.windower("unknown"), nullptr);
}

TEST_F(HubTest, WindowsAlignedAcrossApps) {
  MonitorHub hub(broker_.make_sub(), clock_);
  Reporter early(broker_.make_pub(), {"early", "u"});
  Reporter late(broker_.make_pub(), {"late", "u"});
  clock_.advance(to_nanos(0.3));
  early.report(1.0);
  clock_.advance(to_nanos(2.4));  // late's first sample at 2.7 s
  late.report(1.0);
  clock_.advance(to_nanos(1.0));
  hub.poll();
  // Both apps' windows sit on the hub's 1 s grid.
  ASSERT_NE(hub.windower("early"), nullptr);
  ASSERT_NE(hub.windower("late"), nullptr);
  EXPECT_EQ(hub.windower("early")->rates()[0].t, 0);
  EXPECT_EQ(hub.windower("late")->rates()[0].t, to_nanos(2.0));
}

TEST_F(HubTest, MalformedAndForeignTopicsCounted) {
  MonitorHub hub(broker_.make_sub(), clock_);
  auto pub = broker_.make_pub();
  pub->publish("progress/app", "garbage payload");
  pub->publish("progress/", encode_sample({1.0, kNoPhase}));  // empty name
  hub.poll();
  EXPECT_EQ(hub.malformed(), 2U);
  EXPECT_EQ(hub.samples(), 0U);
}

TEST_F(HubTest, UnknownAppDistinctFromIdleApp) {
  MonitorHub hub(broker_.make_sub(), clock_);
  Reporter idle(broker_.make_pub(), {"idle", "u"});
  clock_.advance(to_nanos(0.2));
  idle.report(1.0);  // one sample, then silence
  clock_.advance(to_nanos(2.8));
  hub.poll();

  // Known app reading zero: rate_of() is engaged and zero.
  ASSERT_TRUE(hub.rate_of("idle").has_value());
  EXPECT_DOUBLE_EQ(*hub.rate_of("idle"), 0.0);
  EXPECT_TRUE(hub.has_rate("idle"));
  EXPECT_DOUBLE_EQ(hub.current_rate("idle"), 0.0);

  // Unknown app: no value at all, not a zero.
  EXPECT_FALSE(hub.rate_of("ghost").has_value());
  EXPECT_FALSE(hub.has_rate("ghost"));
  EXPECT_DOUBLE_EQ(hub.current_rate("ghost"), 0.0);  // legacy conflation
}

TEST_F(HubTest, HealthAndStalenessPerApp) {
  MonitorHub hub(broker_.make_sub(), clock_);
  Reporter app(broker_.make_pub(), {"app", "u"});
  // Steady 100 ms cadence teaches the tracker a heartbeat.
  for (int i = 0; i < 20; ++i) {
    clock_.advance(msec(100));
    app.report(1.0);
  }
  hub.poll();
  EXPECT_EQ(hub.health("app"), SignalHealth::kHealthy);
  ASSERT_TRUE(hub.staleness("app").has_value());
  EXPECT_EQ(*hub.staleness("app"), 0);
  ASSERT_NE(hub.tracker("app"), nullptr);
  ASSERT_NE(hub.classifier("app"), nullptr);

  // Silence long past the learned cadence degrades, then loses, the feed.
  clock_.advance(to_nanos(10.0));
  EXPECT_EQ(hub.health("app"), SignalHealth::kLost);
  EXPECT_EQ(*hub.staleness("app"), to_nanos(10.0));

  // An application that never published has no staleness and grades
  // lost — no feed at all is the definition of a lost signal.
  EXPECT_EQ(hub.health("ghost"), SignalHealth::kLost);
  EXPECT_FALSE(hub.staleness("ghost").has_value());
  EXPECT_EQ(hub.tracker("ghost"), nullptr);
  EXPECT_EQ(hub.classifier("ghost"), nullptr);
}

TEST_F(HubTest, MalformedPayloadsAttributedPerApp) {
  MonitorHub hub(broker_.make_sub(), clock_);
  Reporter good(broker_.make_pub(), {"good", "u"});
  auto pub = broker_.make_pub();
  clock_.advance(to_nanos(0.1));
  good.report(1.0);
  hub.poll();  // "good" is now a known app
  pub->publish("progress/good", "garbage");
  pub->publish("progress/good", "more garbage");
  pub->publish("progress/", "nameless garbage");
  hub.poll();
  EXPECT_EQ(hub.malformed(), 3U);
  EXPECT_EQ(hub.malformed_of("good"), 2U);
  EXPECT_EQ(hub.malformed_of("ghost"), 0U);
  EXPECT_EQ(hub.samples(), 1U);
}

TEST_F(HubTest, TracksTwoSimulatedAppsOnOnePackage) {
  exp::SimRig rig;
  const auto lammps = apps::lammps();
  const auto stream = apps::stream();
  apps::SimApp app1(rig.package(), rig.broker(), lammps.spec, 1,
                    apps::CoreRange{0, 12});
  apps::SimApp app2(rig.package(), rig.broker(), stream.spec, 2,
                    apps::CoreRange{12, 12});
  MonitorHub hub(rig.broker().make_sub(), rig.time());
  rig.engine().every(kNanosPerSecond, [&](Nanos) { hub.poll(); });
  rig.engine().run_for(to_nanos(10.0));
  hub.poll();
  ASSERT_EQ(hub.applications().size(), 2U);
  EXPECT_GT(hub.current_rate("lammps"), 0.0);
  EXPECT_GT(hub.current_rate("stream"), 0.0);
}

}  // namespace
}  // namespace procap::progress
