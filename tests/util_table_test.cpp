// Tests for table and CSV output helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/table.hpp"

namespace procap {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22 |"), std::string::npos);
}

TEST(TablePrinter, CsvMode) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(NumFormat, FixedPrecision) {
  EXPECT_EQ(num(3.14159, 2), "3.14");
  EXPECT_EQ(num(2.0, 0), "2");
}

TEST(SciFormat, ScientificNotation) {
  EXPECT_EQ(sci(0.00391, 2), "3.91e-03");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/procap_csv_test.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.row({1.0, 2.5});
    w.row({3.0, 4.0});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "x,y\n1,2.5\n3,4\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWrongArity) {
  const std::string path = testing::TempDir() + "/procap_csv_test2.csv";
  CsvWriter w(path, {"x"});
  EXPECT_THROW(w.row({1.0, 2.0}), std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace procap
