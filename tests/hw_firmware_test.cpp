// Tests for the RAPL firmware controller in isolation (scripted power).
#include <gtest/gtest.h>

#include "hw/firmware.hpp"

namespace procap::hw {
namespace {

rapl::PkgPowerLimit make_limit(Watts cap, bool enabled = true,
                               Seconds window = 0.01) {
  rapl::PkgPowerLimit limit;
  limit.pl1.power = cap;
  limit.pl1.time_window = window;
  limit.pl1.enabled = enabled;
  limit.pl1.clamped = true;
  return limit;
}

class FirmwareTest : public ::testing::Test {
 protected:
  CpuSpec spec_ = CpuSpec::skylake24();
  RaplFirmware fw_{spec_};

  void feed(Watts power, int steps) {
    for (int i = 0; i < steps; ++i) {
      fw_.observe(power, msec(1));
    }
  }
};

TEST_F(FirmwareTest, UncappedByDefault) {
  EXPECT_FALSE(fw_.enforcing());
  feed(200.0, 100);
  EXPECT_DOUBLE_EQ(fw_.frequency_cap(), spec_.f_max);
  EXPECT_DOUBLE_EQ(fw_.duty_cap(), 1.0);
}

TEST_F(FirmwareTest, ThrottlesFrequencyWhenOverCap) {
  fw_.program(make_limit(100.0));
  feed(150.0, 5);
  EXPECT_LT(fw_.frequency_cap(), spec_.f_max);
  EXPECT_DOUBLE_EQ(fw_.duty_cap(), 1.0);  // duty untouched before f_min
}

TEST_F(FirmwareTest, OneBinPerActuationPeriod) {
  // Window 10 ms -> one actuation per 5 ms; the first move is immediate.
  // Eleven 1 ms observations allow moves at t = 1, 6, 11 ms: three bins.
  fw_.program(make_limit(100.0));
  feed(150.0, 11);
  EXPECT_DOUBLE_EQ(fw_.frequency_cap(), spec_.f_max - 3 * spec_.f_step);
}

TEST_F(FirmwareTest, EngagesDutyCyclingAtFrequencyFloor) {
  fw_.program(make_limit(30.0));
  const int bins = static_cast<int>(spec_.frequency_bins());
  feed(150.0, 5 * (bins + 5) + 5);
  EXPECT_DOUBLE_EQ(fw_.frequency_cap(), spec_.f_min);
  EXPECT_LT(fw_.duty_cap(), 1.0);
}

TEST_F(FirmwareTest, DutyNeverBelowOneSixteenth) {
  fw_.program(make_limit(1.0));
  feed(150.0, 500);
  EXPECT_GE(fw_.duty_cap(), CpuSpec::kDutyStep - 1e-12);
}

TEST_F(FirmwareTest, RecoversDutyBeforeFrequency) {
  fw_.program(make_limit(30.0));
  feed(150.0, 300);  // deep throttle: f_min + duty cycling
  ASSERT_LT(fw_.duty_cap(), 1.0);
  // Now power is far below cap: duty must recover to 1.0 before f rises.
  Watts p = 10.0;
  while (fw_.duty_cap() < 1.0) {
    fw_.observe(p, msec(1));
    EXPECT_DOUBLE_EQ(fw_.frequency_cap(), spec_.f_min);
  }
  feed(10.0, 5);
  EXPECT_GT(fw_.frequency_cap(), spec_.f_min);
}

TEST_F(FirmwareTest, HoldsWithinHysteresisBand) {
  fw_.program(make_limit(100.0));
  feed(99.0, 50);  // inside [cap - margin, cap]: no movement off f_max
  EXPECT_DOUBLE_EQ(fw_.frequency_cap(), spec_.f_max);
  EXPECT_DOUBLE_EQ(fw_.duty_cap(), 1.0);
}

TEST_F(FirmwareTest, DisableReleasesActuators) {
  fw_.program(make_limit(50.0));
  feed(150.0, 50);
  ASSERT_LT(fw_.frequency_cap(), spec_.f_max);
  fw_.program(make_limit(50.0, /*enabled=*/false));
  EXPECT_DOUBLE_EQ(fw_.frequency_cap(), spec_.f_max);
  EXPECT_DOUBLE_EQ(fw_.duty_cap(), 1.0);
}

TEST_F(FirmwareTest, RunningAverageTracksWindow) {
  fw_.program(make_limit(100.0, true, 0.02));
  fw_.observe(200.0, msec(1));  // priming sets avg directly
  EXPECT_NEAR(fw_.running_average(), 200.0, 1e-9);
  // A sudden drop moves the average only partially (EMA with 20 ms tau).
  fw_.observe(0.0, msec(1));
  EXPECT_GT(fw_.running_average(), 150.0);
}

TEST_F(FirmwareTest, RecoveryRaisesFrequencyTowardMax) {
  fw_.program(make_limit(100.0));
  feed(150.0, 10);
  const Hertz throttled = fw_.frequency_cap();
  feed(50.0, 30);  // far under cap
  EXPECT_GT(fw_.frequency_cap(), throttled);
}

}  // namespace
}  // namespace procap::hw
