// Tests for the Unix-domain-socket pub/sub transport.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "msgbus/uds.hpp"
#include "util/time.hpp"

namespace procap::msgbus {
namespace {

std::string socket_path(const char* tag) {
  return testing::TempDir() + "/procap_uds_" + tag + ".sock";
}

void wait_for_connections(const UdsPublisher& pub, std::size_t n) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (pub.connections() < n &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(pub.connections(), n);
}

TEST(UdsTransport, DeliversMessages) {
  SteadyTimeSource clock;
  UdsPublisher pub(socket_path("deliver"), clock);
  UdsSubscriber sub(pub.path());
  sub.subscribe("progress/");
  wait_for_connections(pub, 1);

  pub.publish("progress/app", "payload-1");
  const auto msg = sub.recv(to_nanos(5.0));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->topic, "progress/app");
  EXPECT_EQ(msg->payload, "payload-1");
  EXPECT_GT(msg->timestamp, 0);
}

TEST(UdsTransport, FiltersByPrefix) {
  SteadyTimeSource clock;
  UdsPublisher pub(socket_path("filter"), clock);
  UdsSubscriber sub(pub.path());
  sub.subscribe("wanted/");
  wait_for_connections(pub, 1);

  pub.publish("ignored/x", "no");
  pub.publish("wanted/y", "yes");
  const auto msg = sub.recv(to_nanos(5.0));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "yes");
  EXPECT_FALSE(sub.try_recv().has_value());
}

TEST(UdsTransport, FanOutToTwoSubscribers) {
  SteadyTimeSource clock;
  UdsPublisher pub(socket_path("fanout"), clock);
  UdsSubscriber sub1(pub.path());
  UdsSubscriber sub2(pub.path());
  sub1.subscribe("");
  sub2.subscribe("");
  wait_for_connections(pub, 2);

  pub.publish("t", "x");
  EXPECT_TRUE(sub1.recv(to_nanos(5.0)).has_value());
  EXPECT_TRUE(sub2.recv(to_nanos(5.0)).has_value());
}

TEST(UdsTransport, ManyMessagesInOrder) {
  SteadyTimeSource clock;
  UdsPublisher pub(socket_path("order"), clock);
  UdsSubscriber sub(pub.path());
  sub.subscribe("");
  wait_for_connections(pub, 1);

  constexpr int kCount = 500;
  for (int i = 0; i < kCount; ++i) {
    pub.publish("t", std::to_string(i));
  }
  for (int i = 0; i < kCount; ++i) {
    const auto msg = sub.recv(to_nanos(5.0));
    ASSERT_TRUE(msg.has_value()) << "lost message " << i;
    EXPECT_EQ(msg->payload, std::to_string(i));
  }
}

TEST(UdsTransport, SubscriberSurvivesPublisherShutdown) {
  SteadyTimeSource clock;
  auto pub = std::make_unique<UdsPublisher>(socket_path("shutdown"), clock);
  UdsSubscriber sub(pub->path());
  sub.subscribe("");
  wait_for_connections(*pub, 1);
  pub->publish("t", "last");
  pub.reset();  // closes the connection
  // The already-sent message is still deliverable.
  const auto msg = sub.recv(to_nanos(5.0));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "last");
  // Eventually flagged as disconnected.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sub.connected() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(sub.connected());
}

TEST(UdsBackoff, StaysWithinConfiguredBounds) {
  UdsSubscriberOptions options;
  options.backoff_initial = msec(10);
  options.backoff_max = msec(500);
  Rng rng(7);
  Nanos backoff = options.backoff_initial;
  for (int i = 0; i < 200; ++i) {
    backoff = decorrelated_backoff(backoff, rng, options);
    EXPECT_GE(backoff, options.backoff_initial);
    EXPECT_LE(backoff, options.backoff_max);
  }
}

TEST(UdsBackoff, WindowWidensFromPreviousSleep) {
  // The draw window is [initial, 3 * prev]: from the initial sleep the
  // next one can never exceed triple it, however unlucky the draw.
  UdsSubscriberOptions options;
  options.backoff_initial = msec(10);
  options.backoff_max = msec(500);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(decorrelated_backoff(options.backoff_initial, rng, options),
              3 * options.backoff_initial);
  }
}

TEST(UdsBackoff, DifferentStreamsSpreadTheHerd) {
  // The anti-thundering-herd property: subscribers that disconnected at
  // the same instant (same starting backoff) must not retry in lockstep.
  // Simulate a herd of 16 subscribers, each with its own stream, walking
  // five rounds of backoff; assert the sleeps actually spread out.
  UdsSubscriberOptions options;
  options.backoff_initial = msec(10);
  options.backoff_max = msec(500);
  constexpr int kHerd = 16;
  constexpr int kRounds = 5;
  std::vector<Rng> rngs;
  for (int s = 0; s < kHerd; ++s) {
    rngs.emplace_back(1000 + static_cast<std::uint64_t>(s));
  }
  std::vector<Nanos> backoff(kHerd, options.backoff_initial);
  for (int round = 0; round < kRounds; ++round) {
    std::set<Nanos> distinct;
    for (int s = 0; s < kHerd; ++s) {
      backoff[s] = decorrelated_backoff(backoff[s], rngs[s], options);
      distinct.insert(backoff[s]);
    }
    // Plain exponential backoff would put the whole herd on one value
    // every round; jitter must keep (nearly) everyone distinct.
    EXPECT_GE(distinct.size(), kHerd - 2)
        << "round " << round << " collapsed to " << distinct.size()
        << " distinct sleeps";
  }
  // And the cumulative retry instants diverge: no two subscribers share
  // the same total sleep after five rounds.
  std::set<Nanos> totals;
  for (int s = 0; s < kHerd; ++s) {
    Nanos total = 0;
    Rng rng(2000 + static_cast<std::uint64_t>(s));
    Nanos b = options.backoff_initial;
    for (int round = 0; round < kRounds; ++round) {
      b = decorrelated_backoff(b, rng, options);
      total += b;
    }
    totals.insert(total);
  }
  EXPECT_EQ(totals.size(), kHerd);
}

TEST(UdsBackoff, FixedSeedIsReproducible) {
  UdsSubscriberOptions options;
  options.backoff_seed = 42;
  Rng a(options.backoff_seed);
  Rng b(options.backoff_seed);
  Nanos ba = options.backoff_initial;
  Nanos bb = options.backoff_initial;
  for (int i = 0; i < 50; ++i) {
    ba = decorrelated_backoff(ba, a, options);
    bb = decorrelated_backoff(bb, b, options);
    EXPECT_EQ(ba, bb);
  }
}

TEST(UdsTransport, ConnectToNothingThrows) {
  EXPECT_THROW(UdsSubscriber(socket_path("absent")), std::runtime_error);
}

TEST(UdsTransport, SubscriberReconnectsAfterPublisherRebind) {
  // The daemon outlives the instrumented application: when the app (and
  // its publisher socket) dies and a new run rebinds the same path, the
  // subscriber must reattach by itself and keep delivering.
  const std::string path = socket_path("reconnect");
  SteadyTimeSource clock;
  auto pub = std::make_unique<UdsPublisher>(path, clock);
  UdsSubscriber sub(path);
  sub.subscribe("");
  wait_for_connections(*pub, 1);

  pub->publish("t", "before");
  auto msg = sub.recv(to_nanos(5.0));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "before");

  // Tear the publisher down mid-stream and rebind the same path.
  pub.reset();
  pub = std::make_unique<UdsPublisher>(path, clock);
  wait_for_connections(*pub, 1);  // the subscriber came back by itself
  // The accept side counts first; give the subscriber thread a moment to
  // finish its half of the handshake.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!sub.connected() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(sub.connected());
  EXPECT_GE(sub.reconnects(), 1U);

  // The resumed feed delivers, and the filter survived the reconnect.
  pub->publish("t", "after");
  msg = sub.recv(to_nanos(5.0));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "after");
}

TEST(UdsTransport, ReconnectDisabledStaysDead) {
  const std::string path = socket_path("noreconnect");
  SteadyTimeSource clock;
  auto pub = std::make_unique<UdsPublisher>(path, clock);
  UdsSubscriberOptions options;
  options.reconnect = false;
  UdsSubscriber sub(path, options);
  sub.subscribe("");
  wait_for_connections(*pub, 1);

  pub.reset();
  pub = std::make_unique<UdsPublisher>(path, clock);
  // Give a would-be reconnector ample time; this one must not come back.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_FALSE(sub.connected());
  EXPECT_EQ(sub.reconnects(), 0U);
  EXPECT_EQ(pub->connections(), 0U);

  pub->publish("t", "lost");
  EXPECT_FALSE(sub.recv(msec(100)).has_value());
}

TEST(UdsTransport, PublishWithNoSubscribersIsNoOp) {
  SteadyTimeSource clock;
  UdsPublisher pub(socket_path("nosubs"), clock);
  pub.publish("t", "x");  // must not crash or block
  EXPECT_EQ(pub.connections(), 0U);
}

TEST(UdsTransport, EmptyPayloadAndTopicRoundTrip) {
  SteadyTimeSource clock;
  UdsPublisher pub(socket_path("empty"), clock);
  UdsSubscriber sub(pub.path());
  sub.subscribe("");
  wait_for_connections(pub, 1);
  pub.publish("", "");
  const auto msg = sub.recv(to_nanos(5.0));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->topic, "");
  EXPECT_EQ(msg->payload, "");
}

}  // namespace
}  // namespace procap::msgbus

// ---- true cross-process delivery (fork) --------------------------------

#include <sys/wait.h>
#include <unistd.h>

namespace procap::msgbus {
namespace {

#if defined(__SANITIZE_THREAD__)
#define PROCAP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PROCAP_TSAN 1
#endif
#endif

TEST(UdsTransport, CrossProcessProgressDelivery) {
#ifdef PROCAP_TSAN
  GTEST_SKIP() << "TSan cannot fork once threads are running";
#endif
  // The paper's deployment shape: the instrumented application and the
  // monitoring daemon are separate processes on one node.
  const std::string path = socket_path("fork");
  SteadyTimeSource clock;
  UdsPublisher pub(path, clock);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: the monitoring daemon.  Exit code reports what it saw.
    int status = 1;
    try {
      UdsSubscriber sub(path);
      sub.subscribe("progress/");
      int received = 0;
      for (int i = 0; i < 50 && received < 20; ++i) {
        if (sub.recv(to_nanos(0.2)).has_value()) {
          ++received;
        }
      }
      status = received == 20 ? 0 : 2;
    } catch (...) {
      status = 3;
    }
    _exit(status);
  }

  // Parent: the instrumented application.
  wait_for_connections(pub, 1);
  for (int i = 0; i < 20; ++i) {
    pub.publish("progress/app", std::to_string(i));
  }
  int status = -1;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "daemon process saw too few samples";
}

}  // namespace
}  // namespace procap::msgbus
