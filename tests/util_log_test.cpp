// Tests for leveled logging: sink capture, level filtering, and
// restoring the stderr default.
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace {

using procap::LogLevel;

// Install a capturing sink for the test's lifetime; restore defaults on
// the way out so other tests see stderr logging at the default level.
class UtilLog : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_level_ = procap::log_level();
    procap::set_log_sink(
        [this](LogLevel level, const std::string& line) {
          captured_.emplace_back(level, line);
        });
  }
  void TearDown() override {
    procap::set_log_sink(nullptr);
    procap::set_log_level(previous_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
  LogLevel previous_level_ = LogLevel::kWarn;
};

TEST_F(UtilLog, SinkCapturesFormattedLines) {
  procap::set_log_level(LogLevel::kInfo);
  PROCAP_INFO << "cap set to " << 80 << " W";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "cap set to 80 W");
}

TEST_F(UtilLog, LevelFilterDropsBelowThreshold) {
  procap::set_log_level(LogLevel::kWarn);
  PROCAP_DEBUG << "invisible";
  PROCAP_INFO << "also invisible";
  PROCAP_WARN << "visible";
  PROCAP_ERROR << "also visible";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "visible");
  EXPECT_EQ(captured_[1].first, LogLevel::kError);
}

TEST_F(UtilLog, OffSilencesEverything) {
  procap::set_log_level(LogLevel::kOff);
  PROCAP_ERROR << "nothing gets through";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(UtilLog, LevelRoundTrips) {
  procap::set_log_level(LogLevel::kDebug);
  EXPECT_EQ(procap::log_level(), LogLevel::kDebug);
  procap::set_log_level(LogLevel::kError);
  EXPECT_EQ(procap::log_level(), LogLevel::kError);
}

TEST_F(UtilLog, FilterSkipsStreamEvaluation) {
  procap::set_log_level(LogLevel::kWarn);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  PROCAP_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0);  // the macro short-circuits below the level
  PROCAP_WARN << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(UtilLog, NullSinkRestoresStderr) {
  procap::set_log_level(LogLevel::kError);
  procap::set_log_sink(nullptr);
  ::testing::internal::CaptureStderr();
  PROCAP_ERROR << "to stderr";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("to stderr"), std::string::npos);
  EXPECT_TRUE(captured_.empty());  // the old sink is fully detached
}

}  // namespace
