// FaultPlan parser error paths and node-fault coverage.
//
// fault_injection_test.cpp exercises the happy paths; this suite pins
// down the parser's rejection behaviour — malformed lines, out-of-order
// timestamps, overlapping episodes, bad targets — and the node-fault
// syntax the cluster layer scripts its churn with, including the
// NodeFaultInjector's seeded fraction-target resolution.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "fault/injectors.hpp"
#include "fault/plan.hpp"

namespace procap::fault {
namespace {

FaultPlan parse(const std::string& text) {
  std::istringstream is(text);
  return FaultPlan::parse(is);
}

/// Expect parse() to throw and the message to mention `needle` plus the
/// offending line number.
void expect_reject(const std::string& text, const std::string& needle,
                   int line) {
  try {
    (void)parse(text);
    FAIL() << "accepted: " << text;
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(needle), std::string::npos)
        << "message '" << what << "' lacks '" << needle << "'";
    EXPECT_NE(what.find("line " + std::to_string(line)), std::string::npos)
        << "message '" << what << "' lacks the line number " << line;
  }
}

// ------------------------------------------------------ node episodes --

TEST(FaultPlanNode, ParsesEveryFaultKindAndTargetForm) {
  const FaultPlan plan = parse(
      "seed 7\n"
      "node 10 20  crash id 5\n"
      "node 30 inf crash frac 0.10\n"
      "node 10 40  hang id 7\n"
      "node 15 25  hbloss frac 0.05\n"
      "node 0 inf  slow id 2 factor 0.5\n");
  ASSERT_EQ(plan.node.size(), 5u);
  EXPECT_EQ(plan.node[0].fault, NodeFault::kCrash);
  EXPECT_EQ(plan.node[0].node, 5);
  EXPECT_EQ(plan.node[0].start, 10 * kNanosPerSecond);
  EXPECT_EQ(plan.node[0].end, 20 * kNanosPerSecond);
  EXPECT_EQ(plan.node[1].end, kForever);
  EXPECT_DOUBLE_EQ(plan.node[1].fraction, 0.10);
  EXPECT_EQ(plan.node[1].node, -1);
  EXPECT_EQ(plan.node[2].fault, NodeFault::kHang);
  EXPECT_EQ(plan.node[3].fault, NodeFault::kHbLoss);
  EXPECT_EQ(plan.node[4].fault, NodeFault::kSlow);
  EXPECT_DOUBLE_EQ(plan.node[4].factor, 0.5);
}

TEST(FaultPlanNode, RoundTripsThroughEquality) {
  const std::string text =
      "seed 99\n"
      "node 1 9 crash id 0\n"
      "node 2 8 slow frac 0.25 factor 0.75\n";
  EXPECT_EQ(parse(text), parse(text));
}

TEST(FaultPlanNode, RejectsUnknownFaultKind) {
  expect_reject("node 0 10 explode id 1\n", "unknown node fault", 1);
}

TEST(FaultPlanNode, RejectsMissingTarget) {
  expect_reject("node 0 10 crash\n", "needs 'id N' or 'frac P'", 1);
}

TEST(FaultPlanNode, RejectsDuplicateTargets) {
  expect_reject("node 0 10 crash id 1 frac 0.5\n",
                "already has a target", 1);
  expect_reject("node 0 10 crash id 1 id 2\n", "already has a target", 1);
}

TEST(FaultPlanNode, RejectsBadNodeId) {
  expect_reject("node 0 10 crash id -3\n", "node id", 1);
  expect_reject("node 0 10 crash id banana\n", "bad node id", 1);
}

TEST(FaultPlanNode, RejectsFractionOutOfRange) {
  expect_reject("node 0 10 crash frac 0\n", "frac", 1);
  expect_reject("node 0 10 crash frac 1.5\n", "frac", 1);
}

TEST(FaultPlanNode, RejectsFactorOnNonSlowFault) {
  expect_reject("node 0 10 crash id 1 factor 0.5\n",
                "'factor' only applies to 'slow'", 1);
}

TEST(FaultPlanNode, RejectsFactorOutOfRange) {
  expect_reject("node 0 10 slow id 1 factor 0\n", "factor", 1);
  expect_reject("node 0 10 slow id 1 factor 2\n", "factor", 1);
}

TEST(FaultPlanNode, RejectsOutOfOrderTimestamps) {
  expect_reject("node 20 10 crash id 1\n", "end must follow start", 1);
  expect_reject("node 5 5 crash id 1\n", "end must follow start", 1);
}

TEST(FaultPlanNode, RejectsOverlappingSameKindEpisodesOnOneNode) {
  expect_reject(
      "node 0 20 crash id 4\n"
      "node 10 30 crash id 4\n",
      "overlapping 'crash' episodes for node 4", 2);
}

TEST(FaultPlanNode, AllowsOverlapAcrossKindsNodesAndFractions) {
  // Different fault kinds on one node, the same kind on different nodes,
  // and fraction-targeted episodes (resolved per episode) may overlap.
  const FaultPlan plan = parse(
      "node 0 20 crash id 4\n"
      "node 10 30 hang id 4\n"
      "node 10 30 crash id 5\n"
      "node 0 20 crash frac 0.5\n"
      "node 5 25 crash frac 0.5\n");
  EXPECT_EQ(plan.node.size(), 5u);
}

TEST(FaultPlanNode, RejectsTruncatedLines) {
  expect_reject("node 0\n", "line 1", 1);
  expect_reject("node 0 10\n", "line 1", 1);
  expect_reject("node 0 10 crash id\n", "line 1", 1);
  expect_reject("node 0 10 crash frac\n", "line 1", 1);
}

// ------------------------------------------- general parser error paths --

TEST(FaultPlanErrors, ReportsTheOffendingLineNumber) {
  expect_reject(
      "seed 1\n"
      "link 0 10 drop 0.5\n"
      "node 0 10 crash id 1 bogus 3\n",
      "unknown node fault key 'bogus'", 3);
}

TEST(FaultPlanErrors, RejectsUnknownDirective) {
  expect_reject("gpu 0 10 crash id 1\n", "unknown directive", 1);
}

TEST(FaultPlanErrors, RejectsBadSeed) {
  expect_reject("seed banana\n", "bad seed", 1);
}

TEST(FaultPlanErrors, RejectsOutOfOrderLinkAndMsrEpisodes) {
  expect_reject("link 20 10 drop 0.5\n", "end must follow start", 1);
  expect_reject("msr 9 3 read_fail 0.5\n", "end must follow start", 1);
}

TEST(FaultPlanErrors, CommentsAndBlankLinesAreIgnored) {
  const FaultPlan plan = parse(
      "# header comment\n"
      "\n"
      "node 0 10 crash id 1  # trailing comment\n"
      "   \n");
  EXPECT_EQ(plan.node.size(), 1u);
}

// ------------------------------------------------- NodeFaultInjector --

TEST(NodeFaultInjectorTest, ExplicitIdHitsExactlyThatNode) {
  const FaultPlan plan = parse("node 10 20 crash id 5\n");
  const NodeFaultInjector injector(plan, 16);
  for (unsigned n = 0; n < 16; ++n) {
    EXPECT_EQ(injector.state(n, to_nanos(15.0)).crashed, n == 5);
  }
  // Outside the window nobody is crashed, including node 5 (rejoin).
  EXPECT_FALSE(injector.state(5, to_nanos(9.9)).crashed);
  EXPECT_FALSE(injector.state(5, to_nanos(20.0)).crashed);
}

TEST(NodeFaultInjectorTest, FractionResolvesToSeededTargetCount) {
  const FaultPlan plan = parse(
      "seed 21\n"
      "node 0 inf crash frac 0.25\n");
  const NodeFaultInjector injector(plan, 64);
  ASSERT_EQ(injector.episodes(), 1u);
  EXPECT_EQ(injector.targets(0).size(), 16u);
  unsigned crashed = 0;
  for (unsigned n = 0; n < 64; ++n) {
    crashed += injector.state(n, to_nanos(1.0)).crashed ? 1 : 0;
  }
  EXPECT_EQ(crashed, 16u);
}

TEST(NodeFaultInjectorTest, SamePlanSameTargets) {
  const std::string text =
      "seed 33\n"
      "node 0 inf hbloss frac 0.3\n"
      "node 5 15 crash frac 0.2\n";
  const NodeFaultInjector a(parse(text), 100);
  const NodeFaultInjector b(parse(text), 100);
  ASSERT_EQ(a.episodes(), b.episodes());
  for (std::size_t e = 0; e < a.episodes(); ++e) {
    EXPECT_EQ(a.targets(e), b.targets(e));
  }
}

TEST(NodeFaultInjectorTest, InsertingIdEpisodeDoesNotShiftFracDraws) {
  // frac episodes fork their own child stream per episode, so adding an
  // explicit-id episode between them must not change who frac selects.
  const NodeFaultInjector before(parse("seed 5\n"
                                       "node 0 10 crash frac 0.2\n"
                                       "node 20 30 hang frac 0.2\n"),
                                 50);
  const NodeFaultInjector after(parse("seed 5\n"
                                      "node 0 10 crash frac 0.2\n"
                                      "node 12 18 crash id 7\n"
                                      "node 20 30 hang frac 0.2\n"),
                                50);
  EXPECT_EQ(before.targets(0), after.targets(0));
  EXPECT_EQ(before.targets(1), after.targets(2));
}

TEST(NodeFaultInjectorTest, SlowFactorsCompose) {
  // An explicit-id slow and a cluster-wide frac slow overlapping on the
  // same node multiply: the node runs at the product of the factors.
  const FaultPlan plan = parse(
      "node 0 inf slow id 3 factor 0.5\n"
      "node 0 inf slow frac 1.0 factor 0.5\n");
  const NodeFaultInjector injector(plan, 8);
  EXPECT_DOUBLE_EQ(injector.state(3, to_nanos(1.0)).slow_factor, 0.25);
  EXPECT_DOUBLE_EQ(injector.state(0, to_nanos(1.0)).slow_factor, 0.5);
  EXPECT_TRUE(injector.state(3, to_nanos(1.0)).progressing());
}

TEST(NodeFaultInjectorTest, StatesCombineAcrossKinds) {
  const FaultPlan plan = parse(
      "node 0 inf hbloss id 2\n"
      "node 0 inf slow id 2 factor 0.5\n");
  const NodeFaultInjector injector(plan, 8);
  const NodeFaultState st = injector.state(2, to_nanos(1.0));
  EXPECT_TRUE(st.hb_lost);
  EXPECT_FALSE(st.crashed);
  EXPECT_DOUBLE_EQ(st.slow_factor, 0.5);
  EXPECT_TRUE(st.progressing());
  EXPECT_FALSE(st.heartbeating());
  EXPECT_TRUE(st.powered());
}

TEST(NodeFaultInjectorTest, ExplicitIdBeyondClusterSizeIsInert) {
  const FaultPlan plan = parse("node 0 inf crash id 99\n");
  const NodeFaultInjector injector(plan, 8);
  for (unsigned n = 0; n < 8; ++n) {
    EXPECT_FALSE(injector.state(n, to_nanos(1.0)).crashed);
  }
}

}  // namespace
}  // namespace procap::fault
