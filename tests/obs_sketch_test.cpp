// Tests for the DDSketch-style quantile sketch: the relative-error
// guarantee on known distributions, zero/negative handling, span
// clamping, merge semantics, the bounded-memory claim, kill-switch
// behaviour, and lock-free concurrent observation.
#include "obs/sketch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace {

#if !defined(PROCAP_OBS_DISABLED)

using procap::obs::Registry;
using procap::obs::Sketch;

class ObsSketch : public ::testing::Test {
 protected:
  void SetUp() override { Registry::set_enabled(true); }
  void TearDown() override { Registry::set_enabled(true); }
};

TEST_F(ObsSketch, RejectsNonsenseParameters) {
  EXPECT_THROW(Sketch(0.0), std::invalid_argument);
  EXPECT_THROW(Sketch(1.0), std::invalid_argument);
  EXPECT_THROW(Sketch(-0.1), std::invalid_argument);
  EXPECT_THROW(Sketch(0.01, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Sketch(0.01, 2.0, 1.0), std::invalid_argument);
}

TEST_F(ObsSketch, EmptySketchAnswersZero) {
  const Sketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 0.0);
}

TEST_F(ObsSketch, QuantilesWithinRelativeErrorOnUniformGrid) {
  // 1..10000 uniformly: the true q-quantile is q*(n-1)+1 by rank, and
  // every estimate must land within α of it (values are inside the span).
  Sketch s(0.01, 1e-3, 1e6);
  constexpr int kN = 10000;
  for (int i = 1; i <= kN; ++i) {
    s.observe(static_cast<double>(i));
  }
  EXPECT_EQ(s.count(), static_cast<std::uint64_t>(kN));
  for (const double q : {0.01, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    const double truth = q * (kN - 1) + 1.0;
    const double est = s.quantile(q);
    EXPECT_NEAR(est, truth, truth * 2.0 * s.relative_error())
        << "q=" << q;
  }
}

TEST_F(ObsSketch, QuantilesWithinRelativeErrorAcrossMagnitudes) {
  // Microseconds to hundreds of seconds in one stream: the fixed-bucket
  // Histogram's failure case, the sketch's reason to exist.
  Sketch s(0.01, 1e-9, 1e6);
  std::vector<double> values;
  for (int decade = -6; decade <= 2; ++decade) {
    for (int k = 1; k <= 9; ++k) {
      values.push_back(k * std::pow(10.0, decade));
    }
  }
  for (const double v : values) {
    s.observe(v);
  }
  // Median by rank on the sorted grid (the grid is built sorted).
  const double truth = values[(values.size() - 1) / 2];
  EXPECT_NEAR(s.quantile(0.5), truth, truth * 2.0 * s.relative_error());
}

TEST_F(ObsSketch, ZeroAndNegativeLandInZeroBucket) {
  Sketch s;
  s.observe(0.0);
  s.observe(-5.0);
  s.observe(10.0);
  EXPECT_EQ(s.count(), 3u);
  // Two of three observations are <= 0: q below 2/3 reports 0.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_NEAR(s.quantile(1.0), 10.0, 10.0 * 2.0 * s.relative_error());
}

TEST_F(ObsSketch, ValuesOutsideSpanClampToEdgeBuckets) {
  Sketch s(0.01, 1.0, 100.0);
  s.observe(1e-6);  // below span: bottom bucket
  s.observe(1e9);   // above span: top bucket
  EXPECT_EQ(s.count(), 2u);
  // The estimates degrade to the span edges, never out of range and
  // never a crash.
  EXPECT_LE(s.quantile(0.0), 1.0 * (1.0 + s.relative_error()));
  EXPECT_GE(s.quantile(1.0), 100.0 * (1.0 - s.relative_error()));
}

TEST_F(ObsSketch, QuantileArgumentClamps) {
  Sketch s;
  for (int i = 1; i <= 100; ++i) {
    s.observe(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), s.quantile(0.0));
  EXPECT_DOUBLE_EQ(s.quantile(2.0), s.quantile(1.0));
}

TEST_F(ObsSketch, MemoryIsBoundedAndIndependentOfObservationCount) {
  Sketch s(0.01, 1e-9, 1e15);
  const std::size_t before = s.memory_bytes();
  // At α = 1 % over the default span the footprint is tens of KB.
  EXPECT_LT(before, 64u * 1024u);
  for (int i = 0; i < 100000; ++i) {
    s.observe(1e-8 + i * 1e7);
  }
  EXPECT_EQ(s.memory_bytes(), before);
  EXPECT_EQ(s.bucket_count() * sizeof(std::uint64_t), s.memory_bytes());
}

TEST_F(ObsSketch, MergeCombinesStreams) {
  Sketch a(0.01, 1e-3, 1e6);
  Sketch b(0.01, 1e-3, 1e6);
  for (int i = 1; i <= 1000; ++i) {
    a.observe(static_cast<double>(i));
  }
  for (int i = 1001; i <= 2000; ++i) {
    b.observe(static_cast<double>(i));
  }
  ASSERT_TRUE(a.mergeable(b));
  a.merge(b);
  EXPECT_EQ(a.count(), 2000u);
  const double truth = 0.5 * (2000 - 1) + 1.0;
  EXPECT_NEAR(a.quantile(0.5), truth, truth * 2.0 * a.relative_error());
}

TEST_F(ObsSketch, MergeRejectsMismatchedParameters) {
  Sketch a(0.01);
  Sketch alpha(0.05);
  Sketch span(0.01, 1e-3, 1e3);
  EXPECT_FALSE(a.mergeable(alpha));
  EXPECT_FALSE(a.mergeable(span));
  EXPECT_THROW(a.merge(alpha), std::invalid_argument);
  EXPECT_THROW(a.merge(span), std::invalid_argument);
}

TEST_F(ObsSketch, ResetClearsEverything) {
  Sketch s;
  s.observe(0.0);
  s.observe(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  s.observe(7.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_NEAR(s.quantile(0.5), 7.0, 7.0 * 2.0 * s.relative_error());
}

TEST_F(ObsSketch, KillSwitchDropsObservations) {
  Sketch s;
  s.observe(1.0);
  Registry::set_enabled(false);
  s.observe(100.0);
  Registry::set_enabled(true);
  EXPECT_EQ(s.count(), 1u);
}

TEST_F(ObsSketch, ConcurrentObservationsAreLossless) {
  Sketch s(0.01, 1e-3, 1e6);
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&s, t] {
      for (int i = 0; i < kIters; ++i) {
        s.observe(1.0 + t * kIters + i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(s.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(ObsSketch, RegistryFindOrCreateReturnsSameSketch) {
  Sketch& a = Registry::global().sketch("test.sketch_identity");
  Sketch& b = Registry::global().sketch("test.sketch_identity");
  EXPECT_EQ(&a, &b);
  Sketch& labelled =
      Registry::global().sketch("test.sketch_identity", "k=\"v\"");
  EXPECT_NE(&a, &labelled);
}

#else  // PROCAP_OBS_DISABLED

TEST(ObsSketchDisabled, MacroIsInert) {
  PROCAP_OBS_SKETCH(s, "test.sketch_disabled");
  s.observe(1.0);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

#endif  // PROCAP_OBS_DISABLED

}  // namespace
