// Tests for the progress sample codec, Reporter and Monitor.
#include <gtest/gtest.h>

#include "msgbus/bus.hpp"
#include "progress/monitor.hpp"
#include "progress/reporter.hpp"
#include "progress/sample.hpp"
#include "util/time.hpp"

namespace procap::progress {
namespace {

TEST(SampleCodec, RoundTrip) {
  const ProgressSample in{12345.678, 2};
  const auto out = decode_sample(encode_sample(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->amount, in.amount);
  EXPECT_EQ(out->phase, in.phase);
}

TEST(SampleCodec, RoundTripExtremeValues) {
  for (const double amount : {0.0, 1e-300, 1e300, 40000.0, 0.1}) {
    const ProgressSample in{amount, kNoPhase};
    const auto out = decode_sample(encode_sample(in));
    ASSERT_TRUE(out.has_value());
    EXPECT_DOUBLE_EQ(out->amount, amount);
  }
}

TEST(SampleCodec, RejectsGarbage) {
  EXPECT_FALSE(decode_sample("").has_value());
  EXPECT_FALSE(decode_sample("abc").has_value());
  EXPECT_FALSE(decode_sample("1.5").has_value());
  EXPECT_FALSE(decode_sample("1.5 2 extra").has_value());
  EXPECT_FALSE(decode_sample("1.5 x").has_value());
}

TEST(SampleCodec, TopicNaming) {
  EXPECT_EQ(progress_topic("lammps"), "progress/lammps");
}

class ProgressTest : public ::testing::Test {
 protected:
  ManualTimeSource clock_;
  msgbus::Broker broker_{clock_};
};

TEST_F(ProgressTest, ReporterValidatesConfig) {
  EXPECT_THROW(Reporter(nullptr, {"x", "u"}), std::invalid_argument);
  EXPECT_THROW(Reporter(broker_.make_pub(), {"", "u"}),
               std::invalid_argument);
}

TEST_F(ProgressTest, ReporterPublishesOnAppTopic) {
  Reporter reporter(broker_.make_pub(), {"lammps", "atom-steps"});
  auto sub = broker_.make_sub();
  sub->subscribe("progress/lammps");
  reporter.report(40000.0);
  const auto msg = sub->try_recv();
  ASSERT_TRUE(msg.has_value());
  const auto sample = decode_sample(msg->payload);
  ASSERT_TRUE(sample.has_value());
  EXPECT_DOUBLE_EQ(sample->amount, 40000.0);
  EXPECT_EQ(sample->phase, kNoPhase);
  EXPECT_EQ(reporter.reports(), 1U);
}

TEST_F(ProgressTest, MonitorComputesWindowRates) {
  Reporter reporter(broker_.make_pub(), {"app", "units"});
  Monitor monitor(broker_.make_sub(), "app", clock_);
  // 4 reports of 10 units in the first second.
  for (int i = 0; i < 4; ++i) {
    clock_.advance(to_nanos(0.2));
    reporter.report(10.0);
  }
  clock_.advance(to_nanos(0.3));  // crosses the 1 s boundary at 1.1 s
  monitor.poll();
  ASSERT_EQ(monitor.windows(), 1U);
  EXPECT_DOUBLE_EQ(monitor.current_rate(), 40.0);
  EXPECT_DOUBLE_EQ(monitor.total_work(), 40.0);
}

TEST_F(ProgressTest, EmptyWindowsReadZero) {
  Reporter reporter(broker_.make_pub(), {"app", "units"});
  Monitor monitor(broker_.make_sub(), "app", clock_);
  clock_.advance(to_nanos(0.5));
  reporter.report(5.0);
  clock_.advance(to_nanos(2.6));  // windows [0,1) [1,2) [2,3) close
  monitor.poll();
  ASSERT_EQ(monitor.windows(), 3U);
  EXPECT_DOUBLE_EQ(monitor.rates()[0].value, 5.0);
  EXPECT_DOUBLE_EQ(monitor.rates()[1].value, 0.0);
  EXPECT_DOUBLE_EQ(monitor.rates()[2].value, 0.0);
}

TEST_F(ProgressTest, LateSamplesLandInTheirOwnWindow) {
  // A sample published at t=0.9 but polled at t=2.5 must count in the
  // first window, not the current one.
  Reporter reporter(broker_.make_pub(), {"app", "units"});
  Monitor monitor(broker_.make_sub(), "app", clock_);
  clock_.advance(to_nanos(0.9));
  reporter.report(7.0);
  clock_.advance(to_nanos(1.6));  // now 2.5 s
  monitor.poll();
  ASSERT_EQ(monitor.windows(), 2U);
  EXPECT_DOUBLE_EQ(monitor.rates()[0].value, 7.0);
  EXPECT_DOUBLE_EQ(monitor.rates()[1].value, 0.0);
}

TEST_F(ProgressTest, MalformedPayloadsCountedNotCrashed) {
  auto pub = broker_.make_pub();
  Monitor monitor(broker_.make_sub(), "app", clock_);
  pub->publish("progress/app", "not a sample");
  clock_.advance(to_nanos(1.5));
  monitor.poll();
  EXPECT_EQ(monitor.malformed(), 1U);
  EXPECT_EQ(monitor.samples(), 0U);
}

TEST_F(ProgressTest, CustomWindowLength) {
  Reporter reporter(broker_.make_pub(), {"app", "units"});
  Monitor monitor(broker_.make_sub(), "app", clock_, to_nanos(0.5));
  clock_.advance(to_nanos(0.25));
  reporter.report(4.0);
  clock_.advance(to_nanos(0.3));
  monitor.poll();
  ASSERT_EQ(monitor.windows(), 1U);
  EXPECT_DOUBLE_EQ(monitor.current_rate(), 8.0);  // 4 units / 0.5 s
}

TEST_F(ProgressTest, PhaseAttribution) {
  Reporter reporter(broker_.make_pub(), {"qmc", "blocks"});
  Monitor monitor(broker_.make_sub(), "qmc", clock_);
  clock_.advance(to_nanos(0.5));
  reporter.report(10.0, 0);  // VMC1
  clock_.advance(to_nanos(1.0));
  reporter.report(20.0, 2);  // DMC
  clock_.advance(to_nanos(1.0));
  monitor.poll();
  ASSERT_EQ(monitor.windows(), 2U);
  EXPECT_EQ(monitor.last_phase(), 2);
  ASSERT_TRUE(monitor.phase_rates().contains(0));
  ASSERT_TRUE(monitor.phase_rates().contains(2));
  EXPECT_DOUBLE_EQ(monitor.phase_rates().at(0)[0].value, 10.0);
  EXPECT_DOUBLE_EQ(monitor.phase_rates().at(2)[0].value, 20.0);
}

TEST_F(ProgressTest, LossyLinkManifestsAsZeroWindows) {
  // The paper's OpenMC zero-progress artifact: dropped reports mean some
  // 1 s windows close empty and read exactly zero.
  Reporter reporter(broker_.make_pub(), {"openmc", "particles"});
  msgbus::LinkOptions lossy;
  lossy.drop_probability = 0.4;
  lossy.seed = 7;
  Monitor monitor(broker_.make_sub(lossy), "openmc", clock_);
  for (int i = 0; i < 60; ++i) {
    clock_.advance(kNanosPerSecond);
    reporter.report(100000.0, 1);  // one batch per second
    monitor.poll();
  }
  clock_.advance(kNanosPerSecond);
  monitor.poll();
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < monitor.rates().size(); ++i) {
    if (monitor.rates()[i].value == 0.0) {
      ++zeros;
    }
  }
  EXPECT_GT(zeros, 10U);
  EXPECT_LT(zeros, 40U);
}

TEST_F(ProgressTest, MonitorValidatesArguments) {
  EXPECT_THROW(Monitor(nullptr, "x", clock_), std::invalid_argument);
  EXPECT_THROW(Monitor(broker_.make_sub(), "x", clock_, 0),
               std::invalid_argument);
}

TEST_F(ProgressTest, RateStatsAggregate) {
  Reporter reporter(broker_.make_pub(), {"app", "u"});
  Monitor monitor(broker_.make_sub(), "app", clock_);
  for (int s = 0; s < 5; ++s) {
    clock_.advance(to_nanos(0.5));
    reporter.report(3.0);
    clock_.advance(to_nanos(0.5));
    monitor.poll();
  }
  clock_.advance(kNanosPerSecond);
  monitor.poll();
  EXPECT_GE(monitor.rate_stats().count(), 5U);
  EXPECT_NEAR(monitor.rate_stats().mean(), 3.0 * 5 / 6, 1.0);
}

}  // namespace
}  // namespace procap::progress
