// Tests for the control-loop span tracer: flow semantics (cap change →
// actuation → first reflecting progress window), exporter validity via
// the in-repo JSON parser, the summarize round-trip, and a golden-file
// check that the Chrome exporter's byte output stays stable.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "util/units.hpp"

namespace {

using procap::Nanos;
using procap::obs::TraceCollector;
using procap::obs::TraceEvent;
using procap::to_nanos;

// A deterministic little run: two cap changes, one failed + retried
// actuation, windows that close the flows, a mode change and a marker.
// Shared by the exporter tests and the golden-file generator.
void fill_canonical_trace(TraceCollector& trace) {
  trace.set_meta("app", "stream");
  trace.set_meta("scheme", "step");

  trace.daemon_tick(to_nanos(1.0), 1200.0);
  trace.cap_change(to_nanos(1.0), std::nullopt, 80.0, "step");
  trace.actuation(to_nanos(1.0), "set_cap", 80.0, true);
  trace.progress_window(to_nanos(1.0), to_nanos(2.0), 95.0, "stream");

  trace.daemon_tick(to_nanos(2.0), 900.0);
  trace.mode_change(to_nanos(2.0), "budget", "degraded", "stale telemetry");
  trace.mark(to_nanos(2.5), "phase:solve");

  // A failed write abandons the flow; the retry opens a fresh one.
  trace.cap_change(to_nanos(3.0), 80.0, 110.0, "step");
  trace.actuation(to_nanos(3.0), "set_cap", 110.0, false);
  trace.cap_change(to_nanos(4.0), 80.0, 110.0, "step");
  trace.actuation(to_nanos(4.0), "set_cap", 110.0, true);
  trace.progress_window(to_nanos(4.0), to_nanos(5.0), 120.0, "stream");
}

TEST(ObsTrace, FlowClosesOnFirstReflectingWindow) {
  TraceCollector trace;
  trace.cap_change(to_nanos(1.0), std::nullopt, 80.0, "step");
  trace.actuation(to_nanos(1.0), "set_cap", 80.0, true);
  // Window ending before the change does not close the flow.
  trace.progress_window(to_nanos(0.0), to_nanos(1.0), 50.0, "a");
  EXPECT_TRUE(trace.cap_effect_latencies().empty());
  // First window extending past the change closes it: latency = end - change.
  trace.progress_window(to_nanos(1.0), to_nanos(2.0), 60.0, "a");
  const std::vector<Nanos> lat = trace.cap_effect_latencies();
  ASSERT_EQ(lat.size(), 1u);
  EXPECT_EQ(lat[0], to_nanos(1.0));
  // The flow is closed; later windows add no further effects.
  trace.progress_window(to_nanos(2.0), to_nanos(3.0), 60.0, "a");
  EXPECT_EQ(trace.cap_effect_latencies().size(), 1u);
}

TEST(ObsTrace, FailedActuationAbandonsFlow) {
  TraceCollector trace;
  trace.cap_change(to_nanos(1.0), std::nullopt, 80.0, "step");
  trace.actuation(to_nanos(1.0), "set_cap", 80.0, false);
  trace.progress_window(to_nanos(1.0), to_nanos(2.0), 60.0, "a");
  EXPECT_TRUE(trace.cap_effect_latencies().empty());
}

TEST(ObsTrace, RetrySupersedesUnactuatedFlow) {
  TraceCollector trace;
  // Decided but never actuated; the next decision replaces it.
  trace.cap_change(to_nanos(1.0), std::nullopt, 80.0, "step");
  trace.cap_change(to_nanos(3.0), std::nullopt, 80.0, "step");
  trace.actuation(to_nanos(3.0), "set_cap", 80.0, true);
  trace.progress_window(to_nanos(3.0), to_nanos(4.0), 60.0, "a");
  const std::vector<Nanos> lat = trace.cap_effect_latencies();
  ASSERT_EQ(lat.size(), 1u);
  // Latency measured from the *superseding* change, not the stale one.
  EXPECT_EQ(lat[0], to_nanos(1.0));
}

TEST(ObsTrace, OneWindowClosesEveryActuatedFlow) {
  TraceCollector trace;
  trace.cap_change(to_nanos(1.0), std::nullopt, 80.0, "step");
  trace.actuation(to_nanos(1.0), "set_cap", 80.0, true);
  trace.cap_change(to_nanos(2.0), 80.0, 90.0, "step");
  trace.actuation(to_nanos(2.0), "set_cap", 90.0, true);
  trace.progress_window(to_nanos(2.0), to_nanos(3.0), 60.0, "a");
  EXPECT_EQ(trace.cap_effect_latencies().size(), 2u);
}

TEST(ObsTrace, ChromeOutputIsValidJsonWithFlowEvents) {
  TraceCollector trace;
  fill_canonical_trace(trace);
  std::ostringstream os;
  trace.write_chrome(os);
  const std::string text = os.str();
  ASSERT_TRUE(procap::obs::json::valid(text)) << text;

  const auto root = procap::obs::json::parse(text);
  const auto* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  int flow_start = 0, flow_step = 0, flow_finish = 0;
  for (const auto& ev : events->array) {
    const std::string ph = ev.string_or("ph", "");
    if (ph == "s") ++flow_start;
    if (ph == "t") ++flow_step;
    if (ph == "f") ++flow_finish;
  }
  // Three flows opened (one abandoned by the failed write, one
  // superseded), two actuated and finished.
  EXPECT_EQ(flow_start, 3);
  EXPECT_EQ(flow_step, 2);
  EXPECT_EQ(flow_finish, 2);
  const auto* other = root.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->string_or("app", ""), "stream");
}

TEST(ObsTrace, JsonlLinesEachParse) {
  TraceCollector trace;
  fill_canonical_trace(trace);
  std::ostringstream os;
  trace.write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0, metas = 0, windows = 0, effects = 0;
  while (std::getline(is, line)) {
    ++lines;
    const auto obj = procap::obs::json::parse(line);  // throws on bad line
    ASSERT_TRUE(obj.is_object()) << line;
    const std::string kind = obj.string_or("kind", "");
    EXPECT_FALSE(kind.empty()) << line;
    if (kind == "meta") ++metas;
    if (kind == "progress_window") ++windows;
    if (kind == "cap_effect") ++effects;
  }
  EXPECT_EQ(metas, 2u);
  EXPECT_EQ(windows, 2u);
  EXPECT_EQ(effects, 2u);
  EXPECT_EQ(lines, metas + trace.size());
}

TEST(ObsTrace, SummarizeRoundTrip) {
  const std::string path = ::testing::TempDir() + "obs_trace_roundtrip.json";
  {
    TraceCollector trace;
    fill_canonical_trace(trace);
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open());
    trace.write_chrome(out);
  }
  const auto report = procap::obs::summarize_chrome_trace(path);
  EXPECT_EQ(report.daemon_ticks, 2u);
  EXPECT_EQ(report.cap_changes, 3u);
  EXPECT_EQ(report.actuations, 3u);
  EXPECT_EQ(report.failed_actuations, 1u);
  ASSERT_EQ(report.cap_effect_s.size(), 2u);
  EXPECT_NEAR(report.cap_effect_s[0], 1.0, 1e-6);
  EXPECT_EQ(report.mode_changes, 1u);
  EXPECT_EQ(report.windows_by_app.at("stream"), 2u);
  EXPECT_EQ(report.meta.at("scheme"), "step");
  ASSERT_EQ(report.tick_wall_ns.size(), 2u);
  EXPECT_DOUBLE_EQ(report.tick_wall_ns[0], 1200.0);
}

// Golden file: the Chrome exporter's byte output for the canonical trace
// is part of the contract (Perfetto users diff traces).  Regenerate with
// tests/data/regenerate_obs_golden.sh after an intentional format change.
TEST(ObsTrace, ChromeOutputMatchesGolden) {
  std::ifstream golden(std::string(PROCAP_TESTS_DIR) +
                       "/data/obs_golden_trace.json");
  ASSERT_TRUE(golden.is_open())
      << "missing tests/data/obs_golden_trace.json";
  std::ostringstream expected;
  expected << golden.rdbuf();

  TraceCollector trace;
  fill_canonical_trace(trace);
  std::ostringstream actual;
  trace.write_chrome(actual);
  EXPECT_EQ(actual.str(), expected.str());
}

}  // namespace
