// End-to-end cap-to-effect tracing through the cluster control loop:
// the manager opens an epoch span per redistribution, fans out per-node
// flows, closes them on the first reflecting progress sample — and the
// whole kept-flow set (hash AND dump bytes) is identical across thread
// counts, which is what lets CI diff trace dumps like allocation traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/manager.hpp"
#include "cluster/telemetry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace procap::cluster {
namespace {

using procap::obs::FlowRecord;
using procap::obs::FlowTracer;
using procap::obs::FlowTracerOptions;
using procap::obs::FlowTracerStats;
using procap::obs::Registry;

constexpr unsigned kNodes = 64;
constexpr unsigned kEpochs = 24;

ClusterConfig traced_config(unsigned threads) {
  ClusterConfig config;
  config.nodes = kNodes;
  // Slight scarcity so the demand strategy keeps moving grants around —
  // no movement, no flows.
  config.global_budget = 118.0 * kNodes;
  config.jobs = kNodes / 8;
  config.strategy = "demand";
  config.seed = 2024;
  config.threads = threads;
  return config;
}

struct TracedRun {
  std::uint64_t kept_hash = 0;
  std::string dump;
  FlowTracerStats stats;
  Nanos min_latency = -1;
};

TracedRun run_traced(unsigned threads) {
  const ClusterConfig config = traced_config(threads);
  FlowTracerOptions options;
  options.seed = config.seed;
  FlowTracer tracer(options);
  ClusterPowerManager manager(config);
  manager.set_tracer(&tracer);
  manager.run(kEpochs);

  TracedRun out;
  out.kept_hash = tracer.kept_hash();
  out.stats = tracer.stats();
  std::ostringstream os;
  tracer.write_traces_json(os);
  out.dump = os.str();
  for (const FlowRecord& flow : tracer.kept_flows()) {
    if (flow.state == procap::obs::FlowState::kClosed &&
        (out.min_latency < 0 || flow.latency < out.min_latency)) {
      out.min_latency = flow.latency;
    }
  }
  return out;
}

TEST(ClusterTrace, ControlLoopClosesFlowsWithPositiveLatency) {
  const TracedRun run = run_traced(1);
  EXPECT_GT(run.stats.opened, 0u);
  EXPECT_GT(run.stats.closed, 0u);
  EXPECT_GT(run.stats.kept, 0u);
  EXPECT_GT(run.stats.epochs_closed, 0u);
  // Causality: the effect cannot land before the decision.  On the sim
  // clock the fastest possible close is one tick later.
  EXPECT_GT(run.min_latency, 0);
}

TEST(ClusterTrace, KeptFlowSetIsIdenticalAcrossThreadCounts) {
  const TracedRun serial = run_traced(1);
  const TracedRun parallel = run_traced(8);
  EXPECT_EQ(serial.kept_hash, parallel.kept_hash);
  EXPECT_EQ(serial.stats.opened, parallel.stats.opened);
  EXPECT_EQ(serial.stats.closed, parallel.stats.closed);
  EXPECT_EQ(serial.stats.kept, parallel.stats.kept);
  // Byte-for-byte: the CI determinism comparator cmp()s dump files.
  EXPECT_EQ(serial.dump, parallel.dump);
}

TEST(ClusterTrace, TelemetryRollsInFlowLatencies) {
  Registry::set_enabled(true);
  Registry::global().reset_values();

  const ClusterConfig config = traced_config(1);
  FlowTracerOptions options;
  options.seed = config.seed;
  FlowTracer tracer(options);
  ClusterPowerManager manager(config);
  manager.set_tracer(&tracer);
  ClusterTelemetry telemetry(Registry::global());
  telemetry.set_tracer(&tracer);

  for (unsigned epoch = 0; epoch < kEpochs; ++epoch) {
    manager.run_epoch();
    telemetry.update(manager);
  }

  const ClusterSnapshot snap = telemetry.snapshot();
  const FlowTracerStats stats = tracer.stats();
  EXPECT_EQ(snap.flows_closed, stats.closed);
  EXPECT_EQ(snap.flows_orphaned, stats.orphaned);
  EXPECT_EQ(snap.flows_open, stats.open);
  ASSERT_GT(stats.closed, 0u);
  EXPECT_GT(snap.flow_p50_ms, 0.0);
  EXPECT_GE(snap.flow_p99_ms, snap.flow_p50_ms);

  // At least one node must carry a last cap-to-effect latency, and every
  // populated one is a whole number of positive ticks.
  bool saw_latency = false;
  for (const NodeSample& node : snap.nodes) {
    if (node.c2e_ms >= 0.0) {
      saw_latency = true;
      EXPECT_GT(node.c2e_ms, 0.0);
    }
  }
  EXPECT_TRUE(saw_latency);

  // The cluster.json document carries the trace block.
  std::ostringstream os;
  telemetry.write_cluster_json(os, 0);
  EXPECT_NE(os.str().find("\"trace\":{\"closed\":"), std::string::npos);
}

}  // namespace
}  // namespace procap::cluster
