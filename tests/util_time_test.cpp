// Tests for time sources and unit conversions.
#include <gtest/gtest.h>

#include "util/time.hpp"
#include "util/units.hpp"

namespace procap {
namespace {

TEST(Units, SecondsNanosRoundTrip) {
  EXPECT_EQ(to_nanos(1.0), kNanosPerSecond);
  EXPECT_DOUBLE_EQ(to_seconds(kNanosPerSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(to_nanos(0.125)), 0.125);
}

TEST(Units, FrequencyHelpers) {
  EXPECT_DOUBLE_EQ(mhz(3300), 3.3e9);
  EXPECT_DOUBLE_EQ(ghz(1.2), 1.2e9);
  EXPECT_DOUBLE_EQ(as_mhz(mhz(2500)), 2500.0);
  EXPECT_DOUBLE_EQ(as_ghz(ghz(2.7)), 2.7);
}

TEST(Units, MsecUsecHelpers) {
  EXPECT_EQ(msec(1), 1'000'000);
  EXPECT_EQ(usec(1), 1'000);
  EXPECT_EQ(msec(2.5), 2'500'000);
}

TEST(ManualTimeSource, StartsAtGivenOrigin) {
  ManualTimeSource t(42);
  EXPECT_EQ(t.now(), 42);
}

TEST(ManualTimeSource, AdvanceAccumulates) {
  ManualTimeSource t;
  t.advance(10);
  t.advance(15);
  EXPECT_EQ(t.now(), 25);
}

TEST(ManualTimeSource, AdvanceRejectsNegative) {
  ManualTimeSource t;
  EXPECT_THROW(t.advance(-1), std::invalid_argument);
}

TEST(ManualTimeSource, SetRejectsBackwards) {
  ManualTimeSource t(100);
  EXPECT_THROW(t.set(99), std::invalid_argument);
  t.set(100);  // equal is allowed
  t.set(200);
  EXPECT_EQ(t.now(), 200);
}

TEST(ManualTimeSource, NowSecondsMatchesNanos) {
  ManualTimeSource t;
  t.advance(to_nanos(2.5));
  EXPECT_DOUBLE_EQ(t.now_seconds(), 2.5);
}

TEST(SteadyTimeSource, IsMonotonic) {
  SteadyTimeSource t;
  const Nanos a = t.now();
  const Nanos b = t.now();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace procap
