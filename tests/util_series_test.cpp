// Tests for the timestamped series container.
#include <gtest/gtest.h>

#include <sstream>

#include "util/series.hpp"

namespace procap {
namespace {

TEST(TimeSeries, AddAndIndex) {
  TimeSeries s("x");
  s.add(10, 1.0);
  s.add(20, 2.0);
  EXPECT_EQ(s.size(), 2U);
  EXPECT_EQ(s[0], (Sample{10, 1.0}));
  EXPECT_EQ(s[1], (Sample{20, 2.0}));
  EXPECT_EQ(s.name(), "x");
}

TEST(TimeSeries, RejectsBackwardsTime) {
  TimeSeries s;
  s.add(10, 1.0);
  EXPECT_THROW(s.add(9, 2.0), std::invalid_argument);
  s.add(10, 3.0);  // equal timestamps are allowed
}

TEST(TimeSeries, StartEndThrowWhenEmpty) {
  TimeSeries s;
  EXPECT_THROW((void)s.start_time(), std::out_of_range);
  EXPECT_THROW((void)s.end_time(), std::out_of_range);
}

TEST(TimeSeries, SliceIsHalfOpen) {
  TimeSeries s;
  for (Nanos t = 0; t < 100; t += 10) {
    s.add(t, static_cast<double>(t));
  }
  const TimeSeries sl = s.slice(20, 50);
  ASSERT_EQ(sl.size(), 3U);
  EXPECT_EQ(sl[0].t, 20);
  EXPECT_EQ(sl[2].t, 40);
}

TEST(TimeSeries, SumAndMeanInWindow) {
  TimeSeries s;
  s.add(0, 1.0);
  s.add(5, 2.0);
  s.add(10, 4.0);
  EXPECT_DOUBLE_EQ(s.sum_in(0, 10), 3.0);
  EXPECT_DOUBLE_EQ(s.mean_in(0, 11), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.mean_in(100, 200), 0.0);
}

TEST(TimeSeries, ResampleSum) {
  TimeSeries s;
  // Two events in the first window, one in the second.
  s.add(0, 1.0);
  s.add(400, 1.0);
  s.add(1200, 1.0);
  const TimeSeries r = s.resample(1000, TimeSeries::Reduce::kSum);
  ASSERT_EQ(r.size(), 2U);
  EXPECT_DOUBLE_EQ(r[0].value, 2.0);
  EXPECT_DOUBLE_EQ(r[1].value, 1.0);
}

TEST(TimeSeries, ResampleMean) {
  TimeSeries s;
  s.add(0, 2.0);
  s.add(100, 4.0);
  s.add(1500, 6.0);
  const TimeSeries r = s.resample(1000, TimeSeries::Reduce::kMean);
  ASSERT_EQ(r.size(), 2U);
  EXPECT_DOUBLE_EQ(r[0].value, 3.0);
  EXPECT_DOUBLE_EQ(r[1].value, 6.0);
}

TEST(TimeSeries, ResampleRejectsNonPositiveWindow) {
  TimeSeries s;
  s.add(0, 1.0);
  EXPECT_THROW(s.resample(0, TimeSeries::Reduce::kSum), std::invalid_argument);
}

TEST(TimeSeries, ValuesDropTime) {
  TimeSeries s;
  s.add(1, 10.0);
  s.add(2, 20.0);
  EXPECT_EQ(s.values(), (std::vector<double>{10.0, 20.0}));
}

TEST(TimeSeries, CsvOutput) {
  TimeSeries s("power");
  s.add(kNanosPerSecond, 42.5);
  std::ostringstream os;
  s.write_csv(os);
  EXPECT_EQ(os.str(), "t_seconds,power\n1,42.5\n");
}

}  // namespace
}  // namespace procap
