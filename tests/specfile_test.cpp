// Tests for the workload spec file parser.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "apps/app.hpp"
#include "apps/specfile.hpp"
#include "apps/suite.hpp"
#include "exp/rig.hpp"

namespace procap::apps {
namespace {

constexpr const char* kValid = R"(
# toy application
name = toy
unit = steps

[phase warmup]
iterations = 5
cycles = 1.0e8
mem_stall = 1e-3
progress = 2.0

[phase main]
iterations = unbounded
cycles = 3.3e8        # one tick at nominal
mem_stall = 2e-3
bytes = 6.4e6
compute_instr = 5e8
noise_cv = 0.05
noise_ar1 = 0.9
interleave = 4
phase_id = 1
)";

TEST(SpecFile, ParsesValidSpec) {
  const WorkloadSpec spec = parse_spec(kValid);
  EXPECT_EQ(spec.name, "toy");
  EXPECT_EQ(spec.unit, "steps");
  ASSERT_EQ(spec.phases.size(), 2U);
  EXPECT_EQ(spec.phases[0].name, "warmup");
  EXPECT_EQ(spec.phases[0].iterations, 5);
  EXPECT_DOUBLE_EQ(spec.phases[0].cycles, 1.0e8);
  EXPECT_DOUBLE_EQ(spec.phases[0].progress_per_iter, 2.0);
  EXPECT_EQ(spec.phases[1].iterations, kUnbounded);
  EXPECT_DOUBLE_EQ(spec.phases[1].noise_ar1, 0.9);
  EXPECT_EQ(spec.phases[1].interleave, 4U);
  EXPECT_EQ(spec.phases[1].phase_id, 1);
}

TEST(SpecFile, DefaultsApplied) {
  const WorkloadSpec spec = parse_spec(
      "name = x\n[phase]\ncycles = 1e8\n");
  EXPECT_EQ(spec.unit, "iterations");
  EXPECT_EQ(spec.phases[0].name, "phase0");
  EXPECT_EQ(spec.phases[0].iterations, kUnbounded);
  EXPECT_DOUBLE_EQ(spec.phases[0].progress_per_iter, 1.0);
}

TEST(SpecFile, ErrorsCarryLineNumbers) {
  try {
    (void)parse_spec("name = x\n[phase p]\nwrong_key = 1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("wrong_key"), std::string::npos);
  }
}

TEST(SpecFile, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_spec(""), std::invalid_argument);
  EXPECT_THROW((void)parse_spec("name = x\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec("[phase p]\ncycles = 1e8\n"),
               std::invalid_argument);  // missing name
  EXPECT_THROW((void)parse_spec("name = x\n[phase p]\ncycles = abc\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_spec("name = x\nbogus = 1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_spec("name = x\n[phase p\ncycles = 1e8\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_spec("name = x\n[weird p]\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_spec("name = x\n[phase p]\niterations = 0\n"),
               std::invalid_argument);
  // A phase with neither cycles nor stall is meaningless.
  EXPECT_THROW((void)parse_spec("name = x\n[phase p]\nbytes = 10\n"),
               std::invalid_argument);
}

TEST(SpecFile, RoundTripsThroughWriteSpec) {
  const WorkloadSpec original = parse_spec(kValid);
  std::ostringstream os;
  write_spec(os, original);
  const WorkloadSpec reparsed = parse_spec(os.str());
  ASSERT_EQ(reparsed.phases.size(), original.phases.size());
  EXPECT_EQ(reparsed.name, original.name);
  for (std::size_t p = 0; p < original.phases.size(); ++p) {
    EXPECT_EQ(reparsed.phases[p].iterations, original.phases[p].iterations);
    EXPECT_DOUBLE_EQ(reparsed.phases[p].cycles, original.phases[p].cycles);
    EXPECT_DOUBLE_EQ(reparsed.phases[p].mem_stall,
                     original.phases[p].mem_stall);
    EXPECT_DOUBLE_EQ(reparsed.phases[p].noise_ar1,
                     original.phases[p].noise_ar1);
  }
}

TEST(SpecFile, SuiteSpecsRoundTrip) {
  // Every built-in workload survives write -> parse unchanged.
  for (const auto& name : suite_names()) {
    const WorkloadSpec original = by_name(name).spec;
    std::ostringstream os;
    write_spec(os, original);
    const WorkloadSpec reparsed = parse_spec(os.str());
    ASSERT_EQ(reparsed.phases.size(), original.phases.size()) << name;
    for (std::size_t p = 0; p < original.phases.size(); ++p) {
      EXPECT_DOUBLE_EQ(reparsed.phases[p].cycles, original.phases[p].cycles)
          << name;
      EXPECT_DOUBLE_EQ(reparsed.phases[p].bytes, original.phases[p].bytes)
          << name;
    }
  }
}

TEST(SpecFile, LoadSpecFromDiskAndRunIt) {
  const std::string path = testing::TempDir() + "/procap_spec_test.spec";
  {
    std::ofstream file(path);
    file << kValid;
  }
  const WorkloadSpec spec = load_spec(path);
  // The parsed workload actually runs on the simulator.
  exp::SimRig rig;
  SimApp app(rig.package(), rig.broker(), spec, 1);
  rig.engine().run_for(to_nanos(3.0));
  EXPECT_GT(app.iterations_completed(), 5);  // warmup done, main running
  std::remove(path.c_str());
}

TEST(SpecFile, LoadSpecMissingFileThrows) {
  EXPECT_THROW((void)load_spec("/nonexistent/foo.spec"), std::runtime_error);
}

}  // namespace
}  // namespace procap::apps
