// Tests for the deterministic RNG substrate.
#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace procap {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(7);
  StreamingStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.uniform());
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    saw_lo |= (v == 0);
    saw_hi |= (v == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  StreamingStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.normal());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(17);
  StreamingStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.normal(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(19);
  StreamingStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.exponential(4.0));
  }
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // Child is deterministic given the parent seed...
  Rng parent2(23);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child.next_u64(), child2.next_u64());
  }
}

TEST(SplitMix64, KnownFirstOutputs) {
  // Reference values for seed 0 (Vigna's splitmix64.c).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
}

}  // namespace
}  // namespace procap
