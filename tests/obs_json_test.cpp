// Tests for the minimal in-repo JSON parser behind the trace validator,
// obs_report and the JSONL input of tools/analyze.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace {

using procap::obs::json::escape;
using procap::obs::json::parse;
using procap::obs::json::valid;
using procap::obs::json::Value;

TEST(ObsJson, ParsesScalars) {
  EXPECT_EQ(parse("null").type, Value::Type::kNull);
  EXPECT_TRUE(parse("true").boolean);
  EXPECT_FALSE(parse("false").boolean);
  EXPECT_DOUBLE_EQ(parse("42").number, 42.0);
  EXPECT_DOUBLE_EQ(parse("-1.5e3").number, -1500.0);
  EXPECT_EQ(parse("\"hi\"").string, "hi");
}

TEST(ObsJson, ParsesNestedStructure) {
  const Value v = parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(v.is_object());
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[2].find("b")->string, "c");
  EXPECT_EQ(v.find("d")->find("e")->type, Value::Type::kNull);
}

TEST(ObsJson, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\te")").string, "a\"b\\c\nd\te");
  EXPECT_EQ(parse(R"("Aé")").string, "A\xc3\xa9");
}

TEST(ObsJson, AccessorsWithDefaults) {
  const Value v = parse(R"({"n": 7, "s": "x"})");
  EXPECT_DOUBLE_EQ(v.number_or("n", 0.0), 7.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", -1.0), -1.0);
  EXPECT_EQ(v.string_or("s", ""), "x");
  EXPECT_EQ(v.string_or("missing", "dflt"), "dflt");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ObsJson, RejectsMalformed) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated",
        "{\"a\":1,}", "[1 2]", "{\"a\" 1}", "\"bad\\x\"", "1e", "nul"}) {
    EXPECT_THROW((void)parse(bad), std::invalid_argument) << bad;
    EXPECT_FALSE(valid(bad)) << bad;
  }
}

TEST(ObsJson, RejectsTrailingGarbage) {
  EXPECT_THROW((void)parse("{} extra"), std::invalid_argument);
  EXPECT_NO_THROW((void)parse("  {}  "));
}

TEST(ObsJson, RejectsSurrogatePairs) {
  // BMP-only decoder: \u-escaped surrogate halves are out of scope and
  // must not silently produce garbage.  Raw UTF-8 passes through.
  EXPECT_THROW((void)parse("\"\\uD83D\\uDE00\""), std::invalid_argument);
  EXPECT_EQ(parse(R"("😀")").string, "😀");
}

TEST(ObsJson, EscapeRoundTrips) {
  const std::string original = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  const Value v = parse("\"" + escape(original) + "\"");
  EXPECT_EQ(v.string, original);
}

TEST(ObsJson, ErrorsCarryOffset) {
  try {
    (void)parse("[1, oops]");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("4"), std::string::npos)
        << e.what();
  }
}

}  // namespace
