// Cross-module property sweeps (parameterized gtest).
//
// Each suite here asserts an *invariant* over a swept parameter space
// rather than a single example:
//   * synthetic workloads with a designed beta measure back that beta;
//   * the RAPL firmware converges onto any reachable cap;
//   * the Monitor conserves work (sum of window amounts == work reported)
//     under arbitrary reporting cadences;
//   * the progress-sample codec round-trips adversarial values;
//   * the online metric correlates with the end-of-run FOM across
//     operating points (the paper's objective 2 for the metric).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/measure.hpp"
#include "exp/rig.hpp"
#include "hw/firmware.hpp"
#include "progress/analysis.hpp"
#include "progress/monitor.hpp"
#include "progress/reporter.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace procap {
namespace {

// ---- beta is an emergent, measurable property --------------------------

class BetaRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(BetaRoundTrip, DesignedBetaIsMeasuredBack) {
  const double designed_beta = GetParam();
  const Hertz f_nom = hw::CpuSpec::skylake24().f_nominal;
  // Build a workload with iteration time 50 ms at nominal frequency and
  // the requested compute share.
  apps::PhaseSpec ph;
  ph.name = "synthetic";
  ph.iterations = apps::kUnbounded;
  const Seconds t_iter = 0.05;
  ph.cycles = designed_beta * t_iter * f_nom;
  ph.mem_stall = (1.0 - designed_beta) * t_iter;
  ph.bytes = 1e6;
  ph.compute_instr = ph.cycles;
  ph.progress_per_iter = 1.0;
  apps::AppModel model{apps::WorkloadSpec{"synthetic", "iters", {ph}, nullptr},
                       {}};

  const auto c = exp::characterize(model, 1.6e9, 8.0);
  EXPECT_NEAR(c.beta, designed_beta, 0.03) << "beta=" << designed_beta;
}

INSTANTIATE_TEST_SUITE_P(BetaSweep, BetaRoundTrip,
                         ::testing::Values(0.05, 0.2, 0.37, 0.5, 0.64, 0.84,
                                           0.95, 1.0));

// ---- firmware convergence over the reachable cap range ----------------

class FirmwareConvergence : public ::testing::TestWithParam<double> {};

TEST_P(FirmwareConvergence, RunningAverageSettlesOnCap) {
  const Watts cap = GetParam();
  exp::SimRig rig;
  const auto model = apps::lammps();
  apps::SimApp app(rig.package(), rig.broker(), model.spec, 1);
  rig.rapl().set_pkg_cap(cap, 0.04);
  rig.engine().run_for(to_nanos(6.0));
  // Mean power over a settled window, from the energy counter.
  const Joules e0 = rig.package().energy();
  rig.engine().run_for(to_nanos(4.0));
  const Watts mean_power = (rig.package().energy() - e0) / 4.0;
  EXPECT_NEAR(mean_power, cap, 0.05 * cap) << "cap=" << cap;
}

// Reachable range for LAMMPS: static floor ~21 W to uncapped ~150 W.
INSTANTIATE_TEST_SUITE_P(CapSweep, FirmwareConvergence,
                         ::testing::Values(25.0, 35.0, 50.0, 70.0, 90.0,
                                           110.0, 130.0, 145.0));

// ---- monitor conserves work under arbitrary cadences -------------------

struct CadenceCase {
  double mean_interval_s;
  double amount;
  int samples;
};

class MonitorConservation : public ::testing::TestWithParam<CadenceCase> {};

TEST_P(MonitorConservation, WindowSumsEqualReportedWork) {
  const auto [interval, amount, count] = GetParam();
  ManualTimeSource clock;
  msgbus::Broker broker(clock);
  progress::Reporter reporter(broker.make_pub(), {"app", "u"});
  progress::Monitor monitor(broker.make_sub(), "app", clock);
  Rng rng(99);
  double reported = 0.0;
  for (int i = 0; i < count; ++i) {
    clock.advance(to_nanos(rng.exponential(1.0 / interval)));
    reporter.report(amount);
    reported += amount;
    if (i % 7 == 0) {
      monitor.poll();  // interleave polls with reports
    }
  }
  clock.advance(2 * kNanosPerSecond);  // let the last window close
  monitor.poll();
  // Conservation: total work equals what was reported, and the window
  // rates integrate back to the same total.
  EXPECT_NEAR(monitor.total_work(), reported, 1e-9);
  double window_integral = 0.0;
  for (const auto& s : monitor.rates().samples()) {
    window_integral += s.value * to_seconds(monitor.window());
  }
  EXPECT_NEAR(window_integral, reported, 1e-6 * reported + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    CadenceSweep, MonitorConservation,
    ::testing::Values(CadenceCase{0.001, 1.0, 5000},   // 1 kHz reporting
                      CadenceCase{0.05, 40000.0, 400},  // LAMMPS-like
                      CadenceCase{0.33, 1.0, 60},       // AMG-like
                      CadenceCase{1.0, 100000.0, 30},   // OpenMC-like
                      CadenceCase{3.7, 1.0, 12}));      // slower than window

// ---- codec robustness ---------------------------------------------------

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomSamplesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    progress::ProgressSample in;
    in.amount = std::ldexp(rng.uniform(0.0, 1.0),
                           static_cast<int>(rng.uniform_int(-60, 60)));
    in.phase = static_cast<int>(rng.uniform_int(-1, 40));
    const auto out = progress::decode_sample(progress::encode_sample(in));
    ASSERT_TRUE(out.has_value());
    EXPECT_DOUBLE_EQ(out->amount, in.amount);
    EXPECT_EQ(out->phase, in.phase);
  }
}

TEST_P(CodecFuzz, RandomGarbageNeverCrashes) {
  Rng rng(GetParam() ^ 0xdeadbeef);
  for (int i = 0; i < 500; ++i) {
    std::string garbage;
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 24));
    for (std::size_t k = 0; k < len; ++k) {
      garbage.push_back(static_cast<char>(rng.uniform_int(32, 126)));
    }
    (void)progress::decode_sample(garbage);  // must not throw or crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1, 2, 3, 4, 5));

// ---- online metric correlates with the FOM (paper objective 2) --------

class FomCorrelation : public ::testing::TestWithParam<const char*> {};

TEST_P(FomCorrelation, OnlineRateTracksFomAcrossOperatingPoints) {
  const std::string app_name = GetParam();
  std::vector<double> fom_values;
  std::vector<double> online_means;
  for (const double f_mhz : {1600.0, 2200.0, 2800.0, 3300.0}) {
    exp::SimRig rig;
    rig.rapl().set_frequency(mhz(f_mhz));
    const auto model = apps::by_name(app_name);
    apps::SimApp app(rig.package(), rig.broker(), model.spec, 3);
    progress::Monitor monitor(rig.broker().make_sub(), model.spec.name,
                              rig.time());
    rig.engine().every(kNanosPerSecond, [&](Nanos) { monitor.poll(); });
    rig.engine().run_for(to_nanos(20.0));
    monitor.poll();
    fom_values.push_back(progress::figure_of_merit(monitor.rates()));
    // "Online" view: mean of the non-warmup windowed rates.
    online_means.push_back(
        monitor.rates().mean_in(to_nanos(2.0), to_nanos(20.0)));
  }
  EXPECT_GT(pearson(fom_values, online_means), 0.99);
  // And both grow with frequency.
  EXPECT_LT(fom_values.front(), fom_values.back());
}

INSTANTIATE_TEST_SUITE_P(Apps, FomCorrelation,
                         ::testing::Values("lammps", "stream", "amg",
                                           "qmcpack-dmc"));

}  // namespace
}  // namespace procap
