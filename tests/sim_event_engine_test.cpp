// Tests for the event-driven (span-batched) engine path: the span
// protocol, its event-queue edge cases, flush accounting under batched
// advance, and end-to-end exactness of batched vs per-tick execution
// (DESIGN.md §13).
#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/measure.hpp"
#include "exp/rig.hpp"
#include "fault/plan.hpp"
#include "msr/addresses.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace procap::sim {
namespace {

/// Batched component that records every span it is offered.
class SpanRecorder : public Component {
 public:
  void step(Nanos now, Nanos dt) override {
    (void)now;
    (void)dt;
    ++legacy_steps;
  }
  [[nodiscard]] bool batched() const override { return true; }
  Nanos advance(Nanos now, Nanos span, Nanos dt, SpanContext*) override {
    (void)dt;
    spans.emplace_back(now, span);
    if (stop_engine != nullptr) {
      stop_engine->request_stop();  // internal stop condition mid-span
      return std::min(span, consume_at_most);
    }
    return span;
  }
  std::vector<std::pair<Nanos, Nanos>> spans;
  Engine* stop_engine = nullptr;
  Nanos consume_at_most = 0;
  int legacy_steps = 0;
};

TEST(SpanEngine, SingleBatchedComponentGetsWholeSpans) {
  Engine engine(msec(1));
  SpanRecorder rec;
  engine.add(rec);
  engine.run_for(msec(500));
  // No scheduled events: the whole run is one span (500 < kObsFlushTicks).
  ASSERT_EQ(rec.spans.size(), 1U);
  EXPECT_EQ(rec.spans[0], std::make_pair(Nanos{0}, msec(500)));
  EXPECT_EQ(rec.legacy_steps, 0);
  EXPECT_EQ(engine.now(), msec(500));
  EXPECT_EQ(engine.ticks(), 500U);
}

TEST(SpanEngine, SpansBreakAtObsFlushBoundaries) {
  Engine engine(msec(1));
  SpanRecorder rec;
  engine.add(rec);
  const Nanos flush_span =
      static_cast<Nanos>(Engine::kObsFlushTicks) * msec(1);
  engine.run_for(flush_span + msec(100));
  ASSERT_EQ(rec.spans.size(), 2U);
  EXPECT_EQ(rec.spans[0].second, flush_span);
  EXPECT_EQ(rec.spans[1], std::make_pair(flush_span, msec(100)));
}

TEST(SpanEngine, SpansBreakAtScheduledEvents) {
  Engine engine(msec(1));
  SpanRecorder rec;
  engine.add(rec);
  std::vector<Nanos> fired;
  engine.at(msec(7), [&](Nanos now) { fired.push_back(now); });
  engine.run_for(msec(20));
  EXPECT_EQ(fired, (std::vector<Nanos>{msec(7)}));
  // The event splits the run: [0,7) then [7,20).
  ASSERT_EQ(rec.spans.size(), 2U);
  EXPECT_EQ(rec.spans[0], std::make_pair(Nanos{0}, msec(7)));
  EXPECT_EQ(rec.spans[1], std::make_pair(msec(7), msec(13)));
}

TEST(SpanEngine, TwoEventsAtTheSameTimestampFireInFifoOrderInOneBreak) {
  Engine engine(msec(1));
  SpanRecorder rec;
  engine.add(rec);
  std::vector<int> order;
  engine.at(msec(5), [&](Nanos) { order.push_back(1); });
  engine.at(msec(5), [&](Nanos) { order.push_back(2); });
  engine.run_for(msec(10));
  // FIFO at equal timestamps, and only one span break for both.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  ASSERT_EQ(rec.spans.size(), 2U);
  EXPECT_EQ(rec.spans[0].second, msec(5));
}

TEST(SpanEngine, StopInsideSpanTruncatesConsumptionAndEndsRun) {
  Engine engine(msec(1));
  SpanRecorder rec;
  rec.stop_engine = &engine;
  rec.consume_at_most = msec(3);
  engine.add(rec);
  engine.run_for(msec(10));
  // The component hit its stop condition 3 ticks into the 10-tick span:
  // the clock lands mid-span and the run ends.
  ASSERT_EQ(rec.spans.size(), 1U);
  EXPECT_EQ(engine.now(), msec(3));
  EXPECT_EQ(engine.ticks(), 3U);
}

TEST(SpanEngine, MixedComponentsFallBackToPerTick) {
  Engine engine(msec(1));
  SpanRecorder batched;
  SpanRecorder legacy_like;  // second component disables whole spans
  engine.add(batched);
  engine.add(legacy_like);
  engine.run_for(msec(5));
  ASSERT_EQ(batched.spans.size(), 5U);
  for (const auto& [now, span] : batched.spans) {
    (void)now;
    EXPECT_EQ(span, msec(1));
  }
}

TEST(SpanEngine, PerTickEnvForcesTickSpans) {
  ::setenv("PROCAP_SIM_ENGINE", "pertick", 1);
  Engine engine(msec(1));
  ::unsetenv("PROCAP_SIM_ENGINE");
  SpanRecorder rec;
  engine.add(rec);
  engine.run_for(msec(4));
  ASSERT_EQ(rec.spans.size(), 4U);
  EXPECT_EQ(rec.spans[2], std::make_pair(msec(2), msec(1)));
}

#if !defined(PROCAP_OBS_DISABLED)
TEST(SpanEngine, TickAccountingExactAcrossBatchedFlushes) {
  // Satellite regression: kObsFlushTicks accounting must stay exact when
  // whole spans (not single ticks) cross the flush boundary.
  auto& ticks_total = obs::Registry::global().counter("sim.ticks");
  const std::uint64_t before = ticks_total.value();
  Engine engine(msec(1));
  SpanRecorder rec;
  engine.add(rec);
  engine.run_for(msec(3 * Engine::kObsFlushTicks + 137));
  EXPECT_EQ(ticks_total.value() - before, 3 * Engine::kObsFlushTicks + 137);
}

TEST(SpanEngine, DestructionMidSpanFlushesResidualTicksExactly) {
  auto& ticks_total = obs::Registry::global().counter("sim.ticks");
  const std::uint64_t before = ticks_total.value();
  {
    Engine engine(msec(1));
    SpanRecorder rec;
    engine.add(rec);
    // End between flush boundaries; the destructor must report the
    // residual ticks, no more and no fewer.
    engine.run_for(msec(Engine::kObsFlushTicks + 41));
  }
  EXPECT_EQ(ticks_total.value() - before, Engine::kObsFlushTicks + 41);
}
#endif

// ---- Hardware-in-the-loop edge cases ----------------------------------

TEST(SpanEngine, ZeroLengthPhaseCompletesWithoutWork) {
  // A phase with no work per iteration must still complete its iteration
  // count (via idle re-polls) rather than hang or be skipped.
  exp::SimRig rig;
  apps::WorkloadSpec spec;
  spec.name = "empty";
  apps::PhaseSpec empty;
  empty.iterations = 3;
  empty.progress_per_iter = 1.0;
  spec.phases.push_back(empty);
  apps::PhaseSpec tail;
  tail.cycles = 1e6;
  tail.compute_instr = 1e6;
  tail.iterations = 1;
  tail.progress_per_iter = 1.0;
  spec.phases.push_back(tail);
  apps::SimApp app(rig.package(), rig.broker(), spec);
  app.set_on_done([&rig] { rig.engine().request_stop(); });
  rig.engine().run_until([&] { return app.done(); }, to_nanos(1.0));
  EXPECT_TRUE(app.done());
  EXPECT_EQ(app.iterations_completed(), 4);
  EXPECT_DOUBLE_EQ(app.total_progress(), 4.0);
}

TEST(SpanEngine, FaultEpisodeInsideBatchedSpanStillApplies) {
  // An MSR fault window opening and closing mid-run must take effect at
  // its scripted times even though the engine advances the node in
  // multi-tick spans: the stuck power-limit register swallows the cap
  // write until the episode ends, so enforcement starts late.
  const apps::AppModel lammps = apps::lammps();
  auto run = [&](const fault::FaultPlan* plan) {
    exp::RunOptions options;
    options.duration = 6.0;
    options.fault_plan = plan;
    // Cap writes land at every 55<->60 W flip (each ~1 s); the ones
    // inside the stuck window are swallowed, the first one after it
    // restores enforcement.
    auto schedule =
        std::make_unique<policy::StepCap>(60.0, 55.0, 1.0, 1.0);
    return exp::run_under_schedule(lammps, std::move(schedule), options);
  };
  fault::FaultPlan plan;
  fault::MsrEpisode stuck;
  stuck.start = 0;
  stuck.end = to_nanos(3.0);
  stuck.stuck = true;
  stuck.regs.push_back(msr::kMsrPkgPowerLimit);
  plan.msr.push_back(stuck);
  const exp::RunTraces clean = run(nullptr);
  const exp::RunTraces faulty = run(&plan);
  // Clean run: capped from the start.  Faulty run: uncapped power while
  // the register is stuck, capped once the episode clears.
  const double clean_early =
      clean.power.mean_in(to_nanos(1.5), to_nanos(2.5));
  const double faulty_early =
      faulty.power.mean_in(to_nanos(1.5), to_nanos(2.5));
  const double faulty_late =
      faulty.power.mean_in(to_nanos(4.5), to_nanos(5.5));
  EXPECT_LT(clean_early, 70.0);
  EXPECT_GT(faulty_early, 90.0);
  EXPECT_LT(faulty_late, 70.0);
  EXPECT_GT(faulty.msr_faults.dropped_writes, 0U);
}

// ---- Batched vs per-tick exactness ------------------------------------

exp::CapImpact cap_impact_run() {
  return exp::measure_cap_impact(apps::lammps(), 80.0, /*seed=*/7,
                                 /*uncapped_for=*/2.0, /*capped_for=*/2.0,
                                 /*settle=*/0.5);
}

TEST(SpanEngine, BatchedAndPerTickCapImpactBitIdentical) {
  ::unsetenv("PROCAP_SIM_ENGINE");
  const exp::CapImpact batched = cap_impact_run();
  ::setenv("PROCAP_SIM_ENGINE", "pertick", 1);
  const exp::CapImpact pertick = cap_impact_run();
  ::unsetenv("PROCAP_SIM_ENGINE");
  // Bitwise equality, not tolerance: state folds happen at the same
  // simulated times in both modes (the §13 exactness contract).
  EXPECT_EQ(batched.rate_uncapped, pertick.rate_uncapped);
  EXPECT_EQ(batched.rate_capped, pertick.rate_capped);
  EXPECT_EQ(batched.delta, pertick.delta);
  EXPECT_EQ(batched.power_uncapped, pertick.power_uncapped);
  EXPECT_EQ(batched.power_capped, pertick.power_capped);
}

}  // namespace
}  // namespace procap::sim
