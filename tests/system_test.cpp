// Tests for the system-level power manager (top of the paper's Section II
// hierarchy) and its cascade through jobs to node RAPL caps.
#include <gtest/gtest.h>

#include <memory>

#include "apps/suite.hpp"
#include "job/cluster.hpp"
#include "job/manager.hpp"
#include "job/system.hpp"
#include "sim/engine.hpp"

namespace procap::job {
namespace {

// Two 2-node LAMMPS jobs on one engine, each with its own manager.
class SystemTest : public ::testing::Test {
 protected:
  SystemTest() {
    ClusterSpec spec;
    spec.nodes = 2;
    spec.variability_cv = 0.0;
    cluster_a_ = std::make_unique<Cluster>(engine_, apps::lammps(), spec);
    spec.seed = 2;
    cluster_b_ = std::make_unique<Cluster>(engine_, apps::lammps(), spec);
    JobManagerConfig config;
    config.min_node_cap = 25.0;
    manager_a_ = std::make_unique<JobPowerManager>(*cluster_a_,
                                                   engine_.time(), 300.0,
                                                   config);
    manager_b_ = std::make_unique<JobPowerManager>(*cluster_b_,
                                                   engine_.time(), 300.0,
                                                   config);
  }

  sim::Engine engine_;
  std::unique_ptr<Cluster> cluster_a_;
  std::unique_ptr<Cluster> cluster_b_;
  std::unique_ptr<JobPowerManager> manager_a_;
  std::unique_ptr<JobPowerManager> manager_b_;
};

TEST_F(SystemTest, ValidatesArguments) {
  EXPECT_THROW(SystemPowerManager(0.0), std::invalid_argument);
  SystemPowerManager system(500.0);
  EXPECT_THROW(system.add_job("a", 0, *manager_a_, 60.0, 300.0),
               std::invalid_argument);
  EXPECT_THROW(system.add_job("a", 1, *manager_a_, 300.0, 60.0),
               std::invalid_argument);
  system.add_job("a", 1, *manager_a_, 60.0, 300.0);
  EXPECT_THROW(system.add_job("a", 1, *manager_b_, 60.0, 300.0),
               std::invalid_argument);
  EXPECT_THROW(system.remove_job("zzz"), std::invalid_argument);
  EXPECT_THROW((void)system.budget_of("zzz"), std::invalid_argument);
}

TEST_F(SystemTest, EqualPrioritySplitsEqually) {
  SystemPowerManager system(400.0);
  system.add_job("a", 1, *manager_a_, 60.0, 310.0);
  system.add_job("b", 1, *manager_b_, 60.0, 310.0);
  EXPECT_DOUBLE_EQ(system.budget_of("a"), 200.0);
  EXPECT_DOUBLE_EQ(system.budget_of("b"), 200.0);
  EXPECT_DOUBLE_EQ(system.total_granted(), 400.0);
  // Cascaded into the job managers.
  EXPECT_DOUBLE_EQ(manager_a_->budget(), 200.0);
}

TEST_F(SystemTest, PriorityWeightsTheRemainder) {
  SystemPowerManager system(460.0);
  system.add_job("a", 1, *manager_a_, 60.0, 400.0);
  system.add_job("b", 3, *manager_b_, 60.0, 400.0);
  // Floors: 120.  Remainder 340 split 1:3 -> 85 / 255.
  EXPECT_NEAR(system.budget_of("a"), 145.0, 1e-9);
  EXPECT_NEAR(system.budget_of("b"), 315.0, 1e-9);
}

TEST_F(SystemTest, CeilingSurplusRespreads) {
  SystemPowerManager system(500.0);
  system.add_job("a", 1, *manager_a_, 60.0, 150.0);  // low ceiling
  system.add_job("b", 1, *manager_b_, 60.0, 400.0);
  // Naive split would give each 250; a is capped at 150, the surplus
  // flows to b.
  EXPECT_DOUBLE_EQ(system.budget_of("a"), 150.0);
  EXPECT_DOUBLE_EQ(system.budget_of("b"), 350.0);
}

TEST_F(SystemTest, FloorsProtectAdmission) {
  SystemPowerManager system(150.0);
  system.add_job("a", 1, *manager_a_, 100.0, 300.0);
  EXPECT_THROW(system.add_job("b", 1, *manager_b_, 100.0, 300.0),
               std::invalid_argument);
  EXPECT_THROW(system.set_machine_budget(90.0), std::invalid_argument);
}

TEST_F(SystemTest, HighPriorityArrivalSqueezesRunningJob) {
  // The paper's Section II scenario, end to end: job A runs alone with a
  // generous budget; a high-priority job B arrives; A's budget — and its
  // nodes' caps, and its progress — drop immediately.
  SystemPowerManager system(380.0);
  system.add_job("a", 1, *manager_a_, 60.0, 310.0);
  engine_.run_for(to_nanos(10.0));
  const double rate_alone = cluster_a_->job_rate();
  const Watts budget_alone = system.budget_of("a");
  EXPECT_DOUBLE_EQ(budget_alone, 310.0);  // alone: up to its ceiling

  system.add_job("b", 4, *manager_b_, 60.0, 310.0);
  EXPECT_LT(system.budget_of("a"), 130.0);  // floors 60+60, 260 split 1:4
  EXPECT_LE(system.total_granted(), 380.0 + 1e-9);
  engine_.run_for(to_nanos(15.0));
  const double rate_squeezed = cluster_a_->job_rate();
  EXPECT_LT(rate_squeezed, 0.85 * rate_alone);
  // Each of A's nodes really is capped near budget/2.
  EXPECT_NEAR(cluster_a_->node(0)
                  .node->package()
                  .firmware()
                  .limit()
                  .pl1.power,
              system.budget_of("a") / 2.0, 1.0);

  // Job B finishes: A recovers.
  system.remove_job("b");
  EXPECT_DOUBLE_EQ(system.budget_of("a"), 310.0);
  engine_.run_for(to_nanos(15.0));
  EXPECT_GT(cluster_a_->job_rate(), 0.95 * rate_alone);
}

}  // namespace
}  // namespace procap::job
