// Overhead-budget test (perf label): the instrumentation on the sim
// engine's hot loop must cost <= 3% versus the same loop with the
// registry kill switch off.
//
// Methodology note (DESIGN.md §7): a single binary cannot hold both
// compile modes, so the runtime-disabled path (one relaxed load + branch
// per site) stands in for the compiled-out baseline; the true zero-cost
// baseline is the PROCAP_OBS=OFF build, where this test passes
// trivially.  Alternating trials and taking per-mode minima filters
// scheduler noise; an absolute slack term keeps the ratio meaningful
// when the loop body is only nanoseconds.
#include <gtest/gtest.h>

#include <ctime>

#include <algorithm>
#include <cstdint>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"

namespace {

using procap::msec;
using procap::to_nanos;

// Per-thread CPU time: unlike wall clock, preemption by other load on
// the machine (CI neighbors, parallel builds) is not charged to the
// trial, so the comparison stays stable on a busy host.
double thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e9 +
         static_cast<double>(ts.tv_nsec);
}

// One trial: run the engine hot loop (tick + event dispatch — the
// instrumented path) for a fixed simulated duration; return CPU ns.
double trial_ns() {
  procap::sim::Engine engine(msec(1));
  std::uint64_t sink = 0;
  engine.every(msec(1), [&sink](procap::Nanos now) {
    sink += static_cast<std::uint64_t>(now);
  });
  const double start = thread_cpu_ns();
  engine.run_for(to_nanos(200.0));  // 200k ticks: a few ms of CPU time
  const double end = thread_cpu_ns();
  // Keep `sink` observable so the loop body is not deleted.
  EXPECT_GT(sink, 0u);
  return end - start;
}

TEST(ObsOverhead, InstrumentationStaysWithinBudget) {
#if defined(PROCAP_OBS_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out; nothing to measure";
#else
  constexpr int kTrials = 7;
  double best_enabled = 1e18;
  double best_disabled = 1e18;
  // Alternate modes so thermal / frequency drift hits both equally.
  for (int i = 0; i < kTrials; ++i) {
    procap::obs::Registry::set_enabled(true);
    best_enabled = std::min(best_enabled, trial_ns());
    procap::obs::Registry::set_enabled(false);
    best_disabled = std::min(best_disabled, trial_ns());
  }
  procap::obs::Registry::set_enabled(true);

  // <= 3% relative budget, plus 100 us absolute slack so a single
  // scheduler preemption during the best trial cannot flake the test on
  // loaded CI; at ~200k ticks per trial the relative term dominates.
  const double budget = best_disabled * 1.03 + 100e3;
  EXPECT_LE(best_enabled, budget)
      << "instrumented hot loop: " << best_enabled / 1e6
      << " ms vs baseline " << best_disabled / 1e6 << " ms ("
      << (best_enabled / best_disabled - 1.0) * 100.0 << "% overhead)";
#endif
}

}  // namespace
