// Tests for the cluster roll-up layer: snapshot math against the
// manager's ground truth, the conservation pair (granted sum vs. the
// manager's assigned watts and the global budget), liveness counts,
// registry publication, per-node drill-down gauges, and the
// /cluster.json document with its top-k-by-deficit node table.
#include "cluster/telemetry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "cluster/manager.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

#if !defined(PROCAP_OBS_DISABLED)

using procap::cluster::ClusterConfig;
using procap::cluster::ClusterPowerManager;
using procap::cluster::ClusterSnapshot;
using procap::cluster::ClusterTelemetry;
using procap::obs::Registry;

ClusterConfig small_config() {
  ClusterConfig config;
  config.nodes = 8;
  config.global_budget = 1000.0;
  config.jobs = 4;
  config.threads = 1;
  config.seed = 7;
  return config;
}

class ClusterTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::set_enabled(true);
    Registry::global().reset_values();
  }
};

TEST_F(ClusterTelemetryTest, SnapshotMatchesManagerGroundTruth) {
  ClusterPowerManager manager(small_config());
  manager.run(4);
  ClusterTelemetry telemetry(Registry::global());
  telemetry.update(manager);
  EXPECT_EQ(telemetry.updates(), 1u);

  const ClusterSnapshot snap = telemetry.snapshot();
  EXPECT_EQ(snap.epoch, manager.records().back().epoch);
  EXPECT_EQ(snap.t, manager.now());
  EXPECT_DOUBLE_EQ(snap.budget, manager.config().global_budget);
  ASSERT_EQ(snap.nodes.size(), manager.node_count());
  EXPECT_EQ(snap.running_jobs, manager.jobs().running());
  EXPECT_EQ(snap.invariant_violations, manager.invariant_violations());

  // The conservation pair, the invariant a dashboard can check without
  // trusting us: granted.sum is exactly the manager's assigned watts,
  // and it never exceeds the global budget.
  EXPECT_DOUBLE_EQ(snap.granted.sum, manager.assigned());
  EXPECT_LE(snap.granted.sum, snap.budget * (1.0 + 1e-12));

  // Roll math recomputed from the node table itself.
  double cap_sum = 0.0, cap_min = 1e300, cap_max = -1e300;
  unsigned alive = 0, suspect = 0, dead = 0;
  for (const auto& node : snap.nodes) {
    EXPECT_DOUBLE_EQ(node.cap, manager.caps()[node.id]);
    EXPECT_DOUBLE_EQ(node.deficit, node.demand - node.cap);
    cap_sum += node.cap;
    cap_min = std::min(cap_min, node.cap);
    cap_max = std::max(cap_max, node.cap);
    switch (node.liveness) {
      case procap::cluster::Liveness::kAlive:
        ++alive;
        break;
      case procap::cluster::Liveness::kSuspect:
        ++suspect;
        break;
      case procap::cluster::Liveness::kDead:
        ++dead;
        break;
    }
  }
  EXPECT_NEAR(snap.granted.sum, cap_sum, 1e-9);
  EXPECT_DOUBLE_EQ(snap.granted.min, cap_min);
  EXPECT_DOUBLE_EQ(snap.granted.max, cap_max);
  EXPECT_NEAR(snap.granted.mean,
              cap_sum / static_cast<double>(snap.nodes.size()), 1e-9);
  EXPECT_EQ(snap.alive, alive);
  EXPECT_EQ(snap.suspect, suspect);
  EXPECT_EQ(snap.dead, dead);
  EXPECT_EQ(alive + suspect + dead,
            static_cast<unsigned>(manager.node_count()));
}

TEST_F(ClusterTelemetryTest, UpdatePublishesRegistryGauges) {
  ClusterPowerManager manager(small_config());
  manager.run(2);
  ClusterTelemetry telemetry(Registry::global());
  telemetry.update(manager);
  const ClusterSnapshot snap = telemetry.snapshot();

  EXPECT_DOUBLE_EQ(Registry::global().gauge("cluster.budget").value(),
                   snap.budget);
  EXPECT_DOUBLE_EQ(Registry::global().gauge("cluster.granted.sum").value(),
                   snap.granted.sum);
  EXPECT_DOUBLE_EQ(Registry::global().gauge("cluster.power.sum").value(),
                   snap.power.sum);
  EXPECT_DOUBLE_EQ(Registry::global().gauge("cluster.alive").value(),
                   static_cast<double>(snap.alive));
  EXPECT_EQ(Registry::global().counter("cluster.epochs.observed").value(),
            1u);
  // Per-node drill-down gauges: one per node, labeled node="i", carrying
  // that node's values (this is what /timeseries.json?node=i selects).
  for (const auto& node : snap.nodes) {
    const std::string label = "node=\"" + std::to_string(node.id) + "\"";
    EXPECT_DOUBLE_EQ(
        Registry::global().gauge("cluster.node.granted", label).value(),
        node.cap)
        << label;
    EXPECT_DOUBLE_EQ(
        Registry::global().gauge("cluster.node.power", label).value(),
        node.power)
        << label;
  }

  telemetry.update(manager);
  EXPECT_EQ(telemetry.updates(), 2u);
  EXPECT_EQ(Registry::global().counter("cluster.epochs.observed").value(),
            2u);
}

TEST_F(ClusterTelemetryTest, ClusterJsonRoundTripsConservation) {
  ClusterPowerManager manager(small_config());
  manager.run(3);
  ClusterTelemetry telemetry(Registry::global());
  telemetry.update(manager);

  std::ostringstream os;
  telemetry.write_cluster_json(os);
  const std::string text = os.str();
  ASSERT_TRUE(procap::obs::json::valid(text)) << text;
  const auto doc = procap::obs::json::parse(text);

  EXPECT_EQ(doc.number_or("invariant_violations", -1.0), 0.0);
  const auto* granted = doc.find("granted");
  ASSERT_NE(granted, nullptr);
  const auto* nodes = doc.find("nodes");
  ASSERT_NE(nodes, nullptr);
  ASSERT_EQ(nodes->array.size(), manager.node_count());
  // Conservation must survive the JSON round-trip: the node caps parsed
  // back out of the document sum to the granted roll-up in the same
  // document (full double precision, not ostream's 6 digits).
  double cap_sum = 0.0;
  for (const auto& node : nodes->array) {
    cap_sum += node.number_or("cap", 0.0);
  }
  const double granted_sum = granted->number_or("sum", -1.0);
  EXPECT_NEAR(cap_sum, granted_sum,
              1e-9 * std::max(1.0, std::abs(granted_sum)));
  EXPECT_LE(granted_sum, doc.number_or("budget", 0.0) * (1.0 + 1e-9));
}

TEST_F(ClusterTelemetryTest, ClusterJsonTopKRanksByDeficit) {
  ClusterPowerManager manager(small_config());
  manager.run(3);
  ClusterTelemetry telemetry(Registry::global());
  telemetry.update(manager);

  constexpr std::size_t kTopK = 3;
  std::ostringstream os;
  telemetry.write_cluster_json(os, kTopK);
  const auto doc = procap::obs::json::parse(os.str());
  const auto* nodes = doc.find("nodes");
  ASSERT_NE(nodes, nullptr);
  ASSERT_EQ(nodes->array.size(), kTopK);
  // Descending by deficit, and every omitted node hurts no more than
  // the last listed one.
  double prev = nodes->array[0].number_or("deficit", 0.0);
  for (std::size_t i = 1; i < nodes->array.size(); ++i) {
    const double deficit = nodes->array[i].number_or("deficit", 0.0);
    EXPECT_LE(deficit, prev) << i;
    prev = deficit;
  }
  const ClusterSnapshot snap = telemetry.snapshot();
  for (const auto& node : snap.nodes) {
    bool listed = false;
    for (const auto& row : nodes->array) {
      if (static_cast<unsigned>(row.number_or("id", -1.0)) == node.id) {
        listed = true;
        break;
      }
    }
    if (!listed) {
      EXPECT_LE(node.deficit, prev + 1e-12) << node.id;
    }
  }
}

TEST_F(ClusterTelemetryTest, SnapshotBeforeFirstUpdateIsEmpty) {
  ClusterTelemetry telemetry(Registry::global());
  EXPECT_EQ(telemetry.updates(), 0u);
  const ClusterSnapshot snap = telemetry.snapshot();
  EXPECT_TRUE(snap.nodes.empty());
  EXPECT_EQ(snap.epoch, 0u);
  std::ostringstream os;
  telemetry.write_cluster_json(os);
  EXPECT_TRUE(procap::obs::json::valid(os.str())) << os.str();
}

#else  // PROCAP_OBS_DISABLED

TEST(ClusterTelemetryDisabled, BuildsWithoutObs) {
  // The roll-up layer rides on the always-present Registry classes, so
  // the noobs build still compiles and links it; nothing to assert
  // beyond that here.
  SUCCEED();
}

#endif  // PROCAP_OBS_DISABLED

}  // namespace
