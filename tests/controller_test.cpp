// Tests for the unified policy::Controller API (DESIGN.md §15): spec
// parsing, the registry and its error paths, the legacy adapters'
// arithmetic, the closed-loop zoo (PI / FFT / MPC) against synthetic
// plants, the radix-2 FFT kernel, and the cluster refinement bank.
// Legacy bit-parity against committed cap traces lives in
// controller_golden_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <memory>
#include <numbers>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/manager.hpp"
#include "policy/adapters.hpp"
#include "policy/controller.hpp"
#include "policy/fft_controller.hpp"
#include "policy/mpc_controller.hpp"
#include "policy/pi_controller.hpp"
#include "util/fft.hpp"

namespace procap::policy {
namespace {

/// A trustworthy observation: healthy signal, valid power, windows done.
Observation obs(Seconds elapsed, double rate, Watts power,
                std::optional<Watts> applied = std::nullopt) {
  Observation o;
  o.t = to_nanos(elapsed);
  o.elapsed = elapsed;
  o.progress_rate = rate;
  o.windows = static_cast<std::uint64_t>(elapsed) + 1;
  o.power = power;
  o.power_valid = true;
  o.applied_cap = applied;
  o.signal_healthy = true;
  return o;
}

// ------------------------------------------------------ spec parsing --

TEST(ControllerSpec, ParsesANameWithoutParams) {
  const ControllerSpec spec = parse_controller_spec("uncapped");
  EXPECT_EQ(spec.name, "uncapped");
  EXPECT_TRUE(spec.params.empty());
}

TEST(ControllerSpec, ParsesKeyValueParams) {
  const ControllerSpec spec =
      parse_controller_spec("pi:setpoint=640000,kp=0.8,adaptive=false");
  EXPECT_EQ(spec.name, "pi");
  ASSERT_EQ(spec.params.size(), 3u);
  EXPECT_EQ(spec.params.at("setpoint"), "640000");
  EXPECT_EQ(spec.params.at("kp"), "0.8");
  EXPECT_EQ(spec.params.at("adaptive"), "false");
}

TEST(ControllerSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_controller_spec(""), std::invalid_argument);
  EXPECT_THROW((void)parse_controller_spec(":k=v"), std::invalid_argument);
  EXPECT_THROW((void)parse_controller_spec("pi:setpoint"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_controller_spec("pi:=5"), std::invalid_argument);
  EXPECT_THROW((void)parse_controller_spec("pi:a=1,a=2"),
               std::invalid_argument);
}

// ---------------------------------------------------------- registry --

TEST(ControllerRegistry, GlobalRegistryCarriesTheBuiltInZoo) {
  ControllerRegistry& registry = ControllerRegistry::global();
  const std::string help = registry.help();
  for (const char* name : {"uncapped", "constant", "linear", "step", "jagged",
                           "budget", "target", "pi", "fft", "mpc"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
}

TEST(ControllerRegistry, UnknownNameErrorListsWhatIsRegistered) {
  try {
    (void)make_controller("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("unknown controller 'bogus'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("pi"), std::string::npos) << what;
  }
}

TEST(ControllerRegistry, FactoriesRejectBadParameters) {
  // Required parameter missing.
  EXPECT_THROW((void)make_controller("pi"), std::invalid_argument);
  // Unknown key (typo protection via param::require_known).
  EXPECT_THROW((void)make_controller("pi:setpoint=10,bogus=1"),
               std::invalid_argument);
  // Unparsable value.
  EXPECT_THROW((void)make_controller("constant:cap=abc"),
               std::invalid_argument);
  // Domain violations surface from the controller constructors.
  EXPECT_THROW((void)make_controller("pi:setpoint=-5"),
               std::invalid_argument);
  EXPECT_THROW((void)make_controller("fft:window=33"),
               std::invalid_argument);
}

TEST(ControllerRegistry, DuplicateRegistrationIsRejected) {
  ControllerRegistry& registry = ControllerRegistry::global();
  EXPECT_THROW(
      registry.add("uncapped", "dup", [](const ControllerParams&) {
        return make_controller("uncapped");
      }),
      std::invalid_argument);
}

TEST(ControllerRegistry, BuildsAConfiguredControllerFromASpec) {
  const auto controller = make_controller("constant:cap=95,delay=0");
  EXPECT_STREQ(controller->name(), "constant");
  const auto cap = controller->decide(obs(3.0, 100.0, 120.0), CapBounds{});
  ASSERT_TRUE(cap.has_value());
  EXPECT_DOUBLE_EQ(*cap, 95.0);
}

// ---------------------------------------------------------- adapters --

TEST(Adapters, BudgetClampsIntoBoundsAndCountsTheSaturation) {
  BudgetController controller(500.0);
  const auto capped =
      controller.decide(obs(0.0, 0.0, 0.0), CapBounds{0.0, 205.0});
  ASSERT_TRUE(capped.has_value());
  EXPECT_DOUBLE_EQ(*capped, 205.0);
  EXPECT_EQ(controller.status().saturations, 1u);

  const auto roomy =
      controller.decide(obs(1.0, 0.0, 0.0), CapBounds{0.0, 600.0});
  ASSERT_TRUE(roomy.has_value());
  EXPECT_DOUBLE_EQ(*roomy, 500.0);
  EXPECT_EQ(controller.status().saturations, 1u);
}

TEST(Adapters, ScheduleReplayIgnoresBoundsTheShapeIsTheContract) {
  const auto controller =
      make_controller("linear:from=150,floor=60,rate=2,delay=10");
  const CapBounds tight{0.0, 100.0};
  // Uncapped through the delay, then the ramp — even above max_cap.
  EXPECT_FALSE(controller->decide(obs(5.0, 0.0, 0.0), tight).has_value());
  const auto at_start = controller->decide(obs(10.0, 0.0, 0.0), tight);
  ASSERT_TRUE(at_start.has_value());
  EXPECT_DOUBLE_EQ(*at_start, 150.0);
  const auto on_ramp = controller->decide(obs(30.0, 0.0, 0.0), tight);
  ASSERT_TRUE(on_ramp.has_value());
  EXPECT_DOUBLE_EQ(*on_ramp, 150.0 - 2.0 * 20.0);
  const auto floored = controller->decide(obs(500.0, 0.0, 0.0), tight);
  ASSERT_TRUE(floored.has_value());
  EXPECT_DOUBLE_EQ(*floored, 60.0);
}

TEST(Adapters, ProgressTargetKeepsTheLegacyDeadbandArithmetic) {
  ProgressTargetConfig config;
  config.setpoint = 100.0;
  config.deadband = 0.05;
  config.raise_step = 4.0;
  config.lower_step = 2.0;
  ProgressTargetController controller(config);
  const CapBounds bounds{30.0, 205.0};

  // No window yet: hold whatever is applied (here: nothing).
  Observation warming = obs(0.0, 0.0, 120.0, 100.0);
  warming.windows = 0;
  EXPECT_EQ(controller.decide(warming, bounds), std::optional<Watts>(100.0));

  // Below the setpoint: raise.
  EXPECT_EQ(controller.decide(obs(1.0, 90.0, 120.0, 100.0), bounds),
            std::optional<Watts>(104.0));
  // Above the band (setpoint * 1.05): lower.
  EXPECT_EQ(controller.decide(obs(2.0, 120.0, 120.0, 100.0), bounds),
            std::optional<Watts>(98.0));
  // Inside the band: hold.
  EXPECT_EQ(controller.decide(obs(3.0, 102.0, 120.0, 100.0), bounds),
            std::optional<Watts>(100.0));
  // Unhealthy signal: hold, never chase a phantom zero.
  Observation phantom = obs(4.0, 0.0, 120.0, 100.0);
  phantom.signal_healthy = false;
  EXPECT_EQ(controller.decide(phantom, bounds), std::optional<Watts>(100.0));
  EXPECT_EQ(controller.status().saturations, 0u);
}

// ------------------------------------------------------------- PI ----

TEST(PiController, ConvergesToTheSetpointOnALinearPlant) {
  // Plant: rate = 4 * cap, so the setpoint of 400 units/s sits at 100 W.
  PiConfig config;
  config.setpoint = 400.0;
  PiController controller(config);
  const CapBounds bounds{20.0, 200.0};

  Watts applied = 200.0;
  for (int tick = 0; tick < 50; ++tick) {
    const double rate = 4.0 * applied;
    const auto out = controller.decide(
        obs(static_cast<Seconds>(tick), rate, applied, applied), bounds);
    ASSERT_TRUE(out.has_value());
    applied = *out;
  }
  EXPECT_NEAR(4.0 * applied, config.setpoint, 0.05 * config.setpoint);
  // The adaptive gain learned the plant slope (0.01/W -> 100 W/unit).
  EXPECT_NEAR(controller.gain(), 100.0, 20.0);
}

TEST(PiController, HoldsWhileTheSignalIsUntrustworthy) {
  PiConfig config;
  config.setpoint = 400.0;
  PiController controller(config);
  const CapBounds bounds{20.0, 200.0};

  Observation unhealthy = obs(0.0, 350.0, 150.0, 150.0);
  unhealthy.signal_healthy = false;
  EXPECT_EQ(controller.decide(unhealthy, bounds),
            std::optional<Watts>(150.0));

  Observation no_window = obs(1.0, 350.0, 150.0, 150.0);
  no_window.windows = 0;
  EXPECT_EQ(controller.decide(no_window, bounds),
            std::optional<Watts>(150.0));
}

TEST(PiController, ResetRestoresTheConfiguredGain) {
  PiConfig config;
  config.setpoint = 400.0;
  PiController controller(config);
  const CapBounds bounds{20.0, 200.0};
  Watts applied = 200.0;
  for (int tick = 0; tick < 10; ++tick) {
    applied = controller
                  .decide(obs(static_cast<Seconds>(tick), 4.0 * applied,
                              applied, applied),
                          bounds)
                  .value_or(applied);
  }
  EXPECT_NE(controller.gain(), config.gain);
  controller.degrade();
  EXPECT_TRUE(controller.status().degraded);
  controller.reset();
  EXPECT_DOUBLE_EQ(controller.gain(), config.gain);
  EXPECT_FALSE(controller.status().degraded);
}

// ------------------------------------------------------------- FFT ---

TEST(FftController, DetectsASquareWaveAndPhaseMatchesTheCap) {
  FftConfig config;
  config.window = 32;
  config.threshold = 3.0;
  config.margin = 0.0;
  config.recompute = 1;
  FftController controller(config);
  const CapBounds bounds{0.0, 300.0};

  // Period-8 square wave: 4 samples at 150 W, 4 at 70 W.
  const auto wave = [](int tick) {
    return (tick / 4) % 2 == 0 ? 150.0 : 70.0;
  };
  int tick = 0;
  for (; tick < 32; ++tick) {  // warmup: fill the window
    (void)controller.decide(obs(tick, 100.0, wave(tick)), bounds);
  }
  ASSERT_TRUE(controller.periodic());
  EXPECT_DOUBLE_EQ(controller.period(), 8.0);

  // Phase-matched caps: every decision sits on one of the two phase
  // means, and both phases are predicted across a full period sweep.
  int high = 0;
  int low = 0;
  for (; tick < 48; ++tick) {
    const auto cap = controller.decide(obs(tick, 100.0, wave(tick)), bounds);
    ASSERT_TRUE(cap.has_value());
    if (std::abs(*cap - 150.0) < 1.0) {
      ++high;
    } else if (std::abs(*cap - 70.0) < 1.0) {
      ++low;
    } else {
      FAIL() << "cap " << *cap << " matches neither phase level";
    }
  }
  EXPECT_GT(high, 0);
  EXPECT_GT(low, 0);
}

TEST(FftController, FallsBackWhileAperiodic) {
  FftConfig config;
  config.window = 16;
  config.recompute = 1;
  config.fallback = 95.0;
  FftController controller(config);
  const CapBounds bounds{0.0, 300.0};
  // Constant power has an empty spectrum: warmup and steady state both
  // land on the fallback budget.
  for (int tick = 0; tick < 32; ++tick) {
    const auto cap = controller.decide(obs(tick, 100.0, 100.0), bounds);
    ASSERT_TRUE(cap.has_value());
    EXPECT_DOUBLE_EQ(*cap, 95.0);
  }
  EXPECT_FALSE(controller.periodic());
  EXPECT_DOUBLE_EQ(controller.period(), 0.0);
}

TEST(FftController, HoldsWithoutAPowerSample) {
  FftController controller(FftConfig{});
  Observation blind = obs(0.0, 100.0, 0.0, 130.0);
  blind.power_valid = false;
  EXPECT_EQ(controller.decide(blind, CapBounds{}),
            std::optional<Watts>(130.0));
}

// ------------------------------------------------------------- MPC ---

TEST(MpcController, WalksMeasureProbeControlAndMeetsTheSetpoint) {
  // Plant: draws 160 W uncapped; a cap binds exactly (power = cap) and
  // progress is linear in power: rate = 5 * W.
  MpcConfig config;
  config.target = 0.8;
  MpcController controller(config);
  const CapBounds bounds{0.0, 300.0};

  std::optional<Watts> applied;
  std::vector<std::optional<Watts>> decisions;
  int tick = 0;
  const auto step = [&] {
    const Watts power = applied ? std::min(*applied, 160.0) : 160.0;
    const auto out = controller.decide(
        obs(static_cast<Seconds>(tick), 5.0 * power, power, applied), bounds);
    decisions.push_back(out);
    applied = out;
    ++tick;
  };

  // Measure: settle (2) + hold (6) decisions; the 8th one closes the
  // level and already programs the first probe cap.
  for (int i = 0; i < 7; ++i) {
    step();
    EXPECT_FALSE(decisions.back().has_value()) << "tick " << tick;
  }
  // Probe: 4 levels x 8 ticks, a strictly descending ladder.
  std::vector<Watts> ladder;
  for (int i = 0; i < 32; ++i) {
    step();
    ASSERT_TRUE(decisions.back().has_value()) << "tick " << tick;
    if (ladder.empty() || *decisions.back() != ladder.back()) {
      ladder.push_back(*decisions.back());
    }
  }
  ASSERT_EQ(ladder.size(), 4u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_LT(ladder[i], ladder[i - 1]);
  }
  EXPECT_NEAR(ladder[0], 0.8 * 160.0, 1.0);
  EXPECT_NEAR(ladder[3], 0.45 * 160.0, 1.0);

  step();  // closes the last probe level: fit, invert, start control
  ASSERT_TRUE(controller.calibrated());
  EXPECT_NEAR(controller.setpoint(), 0.8 * 5.0 * 160.0, 1.0);
  // Control: the fitted model plus the integral trim settle the plant
  // onto the setpoint.
  for (int i = 0; i < 60; ++i) {
    step();
    ASSERT_TRUE(decisions.back().has_value());
  }
  const double final_rate = 5.0 * std::min(*applied, 160.0);
  EXPECT_NEAR(final_rate, controller.setpoint(),
              0.10 * controller.setpoint());
}

TEST(MpcController, UntrustworthyObservationsFreezeThePhaseClock) {
  MpcController controller(MpcConfig{});
  const CapBounds bounds{0.0, 300.0};
  for (int tick = 0; tick < 20; ++tick) {
    Observation blind = obs(static_cast<Seconds>(tick), 800.0, 160.0, 120.0);
    blind.signal_healthy = false;
    EXPECT_EQ(controller.decide(blind, bounds), std::optional<Watts>(120.0));
  }
  EXPECT_FALSE(controller.calibrated());
}

// ------------------------------------------------------- util::fft ---

TEST(FftMath, RejectsNonPowerOfTwoLengths) {
  std::vector<std::complex<double>> data(12);
  EXPECT_THROW(util::fft(data), std::invalid_argument);
  EXPECT_FALSE(util::is_power_of_two(0));
  EXPECT_FALSE(util::is_power_of_two(12));
  EXPECT_TRUE(util::is_power_of_two(64));
}

TEST(FftMath, TransformsKnownSignalsExactly) {
  // An impulse transforms to a flat spectrum of ones.
  std::vector<std::complex<double>> impulse(8, 0.0);
  impulse[0] = 1.0;
  util::fft(impulse);
  for (const auto& bin : impulse) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
  // A pure cosine at bin 2 concentrates N/2 in bins 2 and N-2.
  std::vector<std::complex<double>> cosine(8);
  for (std::size_t j = 0; j < cosine.size(); ++j) {
    cosine[j] = std::cos(2.0 * std::numbers::pi * 2.0 *
                         static_cast<double>(j) / 8.0);
  }
  util::fft(cosine);
  for (std::size_t k = 0; k < cosine.size(); ++k) {
    const double expected = (k == 2 || k == 6) ? 4.0 : 0.0;
    EXPECT_NEAR(std::abs(cosine[k]), expected, 1e-12) << "bin " << k;
  }
}

// ------------------------------------------- cluster refinement bank --

TEST(ClusterRefinement, RefinersOnlyTrimTheStrategyGrant) {
  cluster::ClusterConfig config;
  config.nodes = 16;
  config.global_budget = 120.0 * 16;
  config.jobs = 4;
  config.seed = 7;
  config.threads = 1;
  config.node_controller = "constant:cap=80,delay=0";
  cluster::ClusterPowerManager manager(config);
  manager.run(6);
  // The refiner asks for 80 W; the bank clamps into [0, grant], so no
  // node can ever exceed min(grant, 80) and conservation holds as-is.
  for (const Watts cap : manager.caps()) {
    EXPECT_LE(cap, 80.0 + 1e-9);
  }
  EXPECT_EQ(manager.invariant_violations(), 0u);
  EXPECT_GE(manager.refined_watts(), 0.0);
  EXPECT_NE(manager.node_controller(0), nullptr);
  EXPECT_STREQ(manager.node_controller(0)->name(), "constant");
}

TEST(ClusterRefinement, EmptySpecDisablesTheBankAndBadSpecsThrowEarly) {
  cluster::ClusterConfig config;
  config.nodes = 8;
  config.global_budget = 120.0 * 8;
  config.jobs = 2;
  config.seed = 7;
  config.threads = 1;
  {
    cluster::ClusterPowerManager manager(config);
    EXPECT_EQ(manager.node_controller(0), nullptr);
    EXPECT_DOUBLE_EQ(manager.refined_watts(), 0.0);
  }
  config.node_controller = "bogus";
  EXPECT_THROW(cluster::ClusterPowerManager{config}, std::invalid_argument);
}

}  // namespace
}  // namespace procap::policy
