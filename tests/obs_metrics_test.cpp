// Tests for the process-wide metrics registry: instrument semantics,
// find-or-create identity, the kill switch, Prometheus exposition, and
// the registry's self-measured hot-path cost.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "obs/sketch.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

using procap::obs::Counter;
using procap::obs::Gauge;
using procap::obs::Histogram;
using procap::obs::Registry;

#if !defined(PROCAP_OBS_DISABLED)

// The registry is process-global; tests share it.  Each test uses its own
// metric names and resets values up front.
class ObsMetrics : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::set_enabled(true);
    Registry::global().reset_values();
  }
  void TearDown() override { Registry::set_enabled(true); }
};

TEST_F(ObsMetrics, CounterCountsAndResets) {
  Counter& c = Registry::global().counter("test.counter_basic");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsMetrics, GaugeLastWriteWins) {
  Gauge& g = Registry::global().gauge("test.gauge_basic");
  g.set(1.5);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST_F(ObsMetrics, RegistryReturnsSameInstrumentForSameName) {
  Counter& a = Registry::global().counter("test.identity");
  Counter& b = Registry::global().counter("test.identity");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  // Distinct label sets are distinct instruments.
  Counter& labelled = Registry::global().counter("test.identity", "k=\"v\"");
  EXPECT_NE(&a, &labelled);
}

TEST_F(ObsMetrics, HistogramBucketsObservations) {
  Histogram& h =
      Registry::global().histogram("test.histo_basic", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(5000.0);  // +Inf bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 5055.5);
  EXPECT_EQ(h.cumulative(0), 1u);  // <= 1
  EXPECT_EQ(h.cumulative(1), 2u);  // <= 10
  EXPECT_EQ(h.cumulative(2), 3u);  // <= 100
  EXPECT_EQ(h.cumulative(3), 4u);  // +Inf
  EXPECT_GT(h.quantile(0.5), 0.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(ObsMetrics, HistogramQuantileEmptyAndClampedArguments) {
  // Regression guards for the quantile edge cases the dashboards lean
  // on: an empty histogram answers 0 (not NaN, not a throw), and q
  // outside [0,1] clamps instead of walking off the bucket array.
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(7.0), 0.0);
  for (int i = 0; i < 10; ++i) {
    h.observe(5.0);
  }
  EXPECT_DOUBLE_EQ(h.quantile(-2.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
  EXPECT_LE(h.quantile(0.0), h.quantile(1.0));
}

TEST_F(ObsMetrics, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({}), std::invalid_argument);
}

TEST_F(ObsMetrics, KillSwitchDropsMutations) {
  Counter& c = Registry::global().counter("test.killswitch");
  c.inc();
  Registry::set_enabled(false);
  EXPECT_FALSE(Registry::enabled());
  c.inc(100);
  Registry::set_enabled(true);
  EXPECT_EQ(c.value(), 1u);  // the disabled increment vanished
  c.inc();
  EXPECT_EQ(c.value(), 2u);
}

TEST_F(ObsMetrics, MacroBindsStaticReference) {
  for (int i = 0; i < 3; ++i) {
    PROCAP_OBS_COUNTER(hits, "test.macro_counter");
    hits.inc();
  }
  EXPECT_EQ(Registry::global().counter("test.macro_counter").value(), 3u);
}

TEST_F(ObsMetrics, PrometheusExposition) {
  Registry::global().counter("test.prom.counter").inc(7);
  Registry::global().gauge("test.prom.gauge", "app=\"x\"").set(2.5);
  Registry::global()
      .histogram("test.prom.histo", {1.0, 2.0})
      .observe(1.5);
  std::ostringstream os;
  Registry::global().write_prometheus(os);
  const std::string text = os.str();
  // Dots sanitized to underscores, procap_ prefix, labels preserved.
  EXPECT_NE(text.find("# TYPE procap_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("procap_test_prom_counter 7"), std::string::npos);
  EXPECT_NE(text.find("procap_test_prom_gauge{app=\"x\"} 2.5"),
            std::string::npos);
  EXPECT_NE(text.find("procap_test_prom_histo_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("procap_test_prom_histo_count 1"), std::string::npos);
}

TEST_F(ObsMetrics, SketchExposesAsSummaryWithQuantileLabels) {
  auto& sketch = Registry::global().sketch("test.prom.sketch", "app=\"x\"");
  for (int i = 1; i <= 100; ++i) {
    sketch.observe(static_cast<double>(i));
  }
  std::ostringstream os;
  Registry::global().write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE procap_test_prom_sketch summary"),
            std::string::npos)
      << text;
  // Pre-computed quantiles carry the quantile label next to the
  // instrument's own labels; _sum and _count ride along.
  EXPECT_NE(text.find(
                "procap_test_prom_sketch{app=\"x\",quantile=\"0.500000\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(
                "procap_test_prom_sketch{app=\"x\",quantile=\"0.990000\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("procap_test_prom_sketch_sum{app=\"x\"} 5050"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("procap_test_prom_sketch_count{app=\"x\"} 100"),
            std::string::npos)
      << text;
}

TEST_F(ObsMetrics, SnapshotCarriesSketchQuantiles) {
  auto& sketch = Registry::global().sketch("test.snap_sketch");
  for (int i = 1; i <= 1000; ++i) {
    sketch.observe(static_cast<double>(i));
  }
  const auto snaps = Registry::global().snapshot();
  bool saw = false;
  for (const auto& snap : snaps) {
    if (snap.name != "test.snap_sketch") {
      continue;
    }
    saw = true;
    EXPECT_EQ(snap.type, 3);
    EXPECT_EQ(snap.count, 1000u);
    EXPECT_DOUBLE_EQ(snap.value, 1000.0);
    EXPECT_NEAR(snap.p50, 500.0, 500.0 * 0.03);
    EXPECT_LE(snap.p50, snap.p95);
    EXPECT_LE(snap.p95, snap.p99);
  }
  EXPECT_TRUE(saw);
}

TEST_F(ObsMetrics, NamesListsRegistrationOrder) {
  (void)Registry::global().counter("test.names.a");
  (void)Registry::global().gauge("test.names.b");
  const std::vector<std::string> names = Registry::global().names();
  const auto a = std::find(names.begin(), names.end(), "test.names.a");
  const auto b = std::find(names.begin(), names.end(), "test.names.b");
  ASSERT_NE(a, names.end());
  ASSERT_NE(b, names.end());
  EXPECT_LT(a, b);
}

TEST_F(ObsMetrics, ConcurrentIncrementsAreLossless) {
  Counter& c = Registry::global().counter("test.concurrent");
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(ObsMetrics, SelfCostIsMeasuredAndSane) {
  const double ns = Registry::self_cost_ns();
  EXPECT_GT(ns, 0.0);
  // An atomic increment costs nanoseconds, not microseconds; catch both a
  // broken timer (0) and an accidentally quadratic hot path.
  EXPECT_LT(ns, 10000.0);
}

TEST_F(ObsMetrics, EscapeLabelValueHandlesHostileCharacters) {
  using procap::obs::escape_label_value;
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("two\nlines"), "two\\nlines");
  // All three at once, in exposition-breaking order.
  EXPECT_EQ(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(escape_label_value(""), "");
}

TEST_F(ObsMetrics, PrometheusLabelBuildsEscapedPair) {
  using procap::obs::prometheus_label;
  EXPECT_EQ(prometheus_label("app", "lammps"), "app=\"lammps\"");
  EXPECT_EQ(prometheus_label("app", "we\"ird\napp\\"),
            "app=\"we\\\"ird\\napp\\\\\"");
}

TEST_F(ObsMetrics, HostileLabelValuesSurviveExposition) {
  // A label value carrying every character the exposition format escapes
  // must come out as one well-formed metric line, not a broken document.
  const std::string labels =
      procap::obs::prometheus_label("app", "bad\"app\nwith\\stuff");
  Gauge& g = Registry::global().gauge("test.hostile_label", labels);
  g.set(7.0);
  std::ostringstream os;
  Registry::global().write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(
      text.find(
          "procap_test_hostile_label{app=\"bad\\\"app\\nwith\\\\stuff\"} 7"),
      std::string::npos)
      << text;
  // No line may contain an unescaped interior quote run that would break
  // a Prometheus parser: every non-comment line is NAME{...} VALUE or
  // NAME VALUE.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    EXPECT_NE(line.find(' '), std::string::npos) << "no value: " << line;
  }
}

TEST_F(ObsMetrics, SnapshotCoversAllInstrumentKinds) {
  Registry::global().counter("test.snap_counter").inc(5);
  Registry::global().gauge("test.snap_gauge").set(2.5);
  Histogram& h = Registry::global().histogram("test.snap_hist",
                                              {1.0, 10.0, 100.0});
  for (int i = 0; i < 100; ++i) {
    h.observe(5.0);
  }
  const auto snaps = Registry::global().snapshot();
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& snap : snaps) {
    if (snap.name == "test.snap_counter") {
      saw_counter = true;
      EXPECT_EQ(snap.type, 0);
      EXPECT_DOUBLE_EQ(snap.value, 5.0);
    } else if (snap.name == "test.snap_gauge") {
      saw_gauge = true;
      EXPECT_EQ(snap.type, 1);
      EXPECT_DOUBLE_EQ(snap.value, 2.5);
    } else if (snap.name == "test.snap_hist") {
      saw_hist = true;
      EXPECT_EQ(snap.type, 2);
      EXPECT_EQ(snap.count, 100u);
      EXPECT_DOUBLE_EQ(snap.sum, 500.0);
      EXPECT_DOUBLE_EQ(snap.value, 100.0);
      // All observations sit in the (1, 10] bucket; the interpolated
      // quantiles must too.
      EXPECT_GT(snap.p50, 1.0);
      EXPECT_LE(snap.p50, 10.0);
      EXPECT_LE(snap.p50, snap.p95);
      EXPECT_LE(snap.p95, snap.p99);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);
}

#else  // PROCAP_OBS_DISABLED

TEST(ObsMetricsDisabled, MacrosAreInert) {
  PROCAP_OBS_COUNTER(c, "test.disabled");
  c.inc();
  EXPECT_EQ(c.value(), 0u);
  PROCAP_OBS_GAUGE(g, "test.disabled.gauge");
  g.set(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

#endif  // PROCAP_OBS_DISABLED

}  // namespace
