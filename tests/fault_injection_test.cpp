// Unit tests for the fault-injection framework: FaultPlan parsing, the
// link fault injector (drop / duplicate / corrupt / truncate / outage /
// jitter reordering), the MSR fault injector (transient EIO, stuck
// registers), and RAPL energy wraparound correctness under injected read
// failures.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "fault/injectors.hpp"
#include "fault/plan.hpp"
#include "msgbus/bus.hpp"
#include "msr/addresses.hpp"
#include "msr/emulated.hpp"
#include "rapl/rapl.hpp"
#include "util/time.hpp"

namespace procap::fault {
namespace {

// ---------------------------------------------------------------- plan --

TEST(FaultPlan, ParsesFullScenario) {
  std::istringstream is(
      "# chaos scenario\n"
      "seed 42\n"
      "link 10 20 drop 0.3 delay 0.05 jitter 0.02\n"
      "link 30 32 outage\n"
      "link 0 inf duplicate 0.05 corrupt 0.01 truncate 0.01\n"
      "msr 40 45 read_fail 0.5 write_fail 0.2\n"
      "msr 50 60 stuck 0x610\n"
      "msr 70 80 read_fail 1.0 reg 0x611 reg 0x610\n");
  const FaultPlan plan = FaultPlan::parse(is);
  EXPECT_EQ(plan.seed, 42U);
  ASSERT_EQ(plan.link.size(), 3U);
  EXPECT_EQ(plan.link[0].start, to_nanos(10.0));
  EXPECT_EQ(plan.link[0].end, to_nanos(20.0));
  EXPECT_DOUBLE_EQ(plan.link[0].drop, 0.3);
  EXPECT_EQ(plan.link[0].delay, to_nanos(0.05));
  EXPECT_EQ(plan.link[0].jitter, to_nanos(0.02));
  EXPECT_TRUE(plan.link[1].outage);
  EXPECT_EQ(plan.link[2].end, kForever);
  EXPECT_DOUBLE_EQ(plan.link[2].duplicate, 0.05);
  ASSERT_EQ(plan.msr.size(), 3U);
  EXPECT_DOUBLE_EQ(plan.msr[0].read_fail, 0.5);
  EXPECT_DOUBLE_EQ(plan.msr[0].write_fail, 0.2);
  EXPECT_TRUE(plan.msr[0].affects(0x123));  // unscoped
  EXPECT_TRUE(plan.msr[1].stuck);
  ASSERT_EQ(plan.msr[1].regs.size(), 1U);
  EXPECT_EQ(plan.msr[1].regs[0], 0x610U);
  EXPECT_TRUE(plan.msr[2].affects(0x611));
  EXPECT_FALSE(plan.msr[2].affects(0x123));  // scoped by 'reg'
}

TEST(FaultPlan, EmptyInputYieldsEmptyPlan) {
  std::istringstream is("\n# only comments\n\n");
  const FaultPlan plan = FaultPlan::parse(is);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, RejectsMalformedInput) {
  const std::vector<std::string> bad = {
      "link 5 2 drop 0.5",       // end before start
      "link 0 10 drop 1.5",      // probability out of range
      "link 0 10 frobnicate",    // unknown link fault
      "link 0",                  // missing end time
      "msr 0 10 stuck zz",       // bad register
      "msr 0 10 read_fail",      // missing value
      "teleport 0 10",           // unknown directive
      "seed banana",             // bad seed
  };
  for (const std::string& text : bad) {
    std::istringstream is(text);
    EXPECT_THROW((void)FaultPlan::parse(is), std::invalid_argument)
        << "accepted: " << text;
  }
}

TEST(FaultPlan, RoundTripsThroughParse) {
  std::istringstream a("seed 7\nlink 1 2 drop 0.25\nmsr 3 4 stuck 0x611\n");
  std::istringstream b("seed 7\nlink 1 2 drop 0.25\nmsr 3 4 stuck 0x611\n");
  EXPECT_EQ(FaultPlan::parse(a), FaultPlan::parse(b));
}

// ------------------------------------------------------- link injector --

FaultPlan make_link_plan(const std::string& episode_line) {
  std::istringstream is("seed 99\n" + episode_line + "\n");
  return FaultPlan::parse(is);
}

struct LinkRig {
  explicit LinkRig(const FaultPlan& plan)
      : broker(clock), injector(std::make_shared<LinkFaultInjector>(plan)) {
    msgbus::LinkOptions opts;
    opts.fault = injector;
    sub = broker.make_sub(opts);
    sub->subscribe("t/");
    pub = broker.make_pub();
  }

  ManualTimeSource clock;
  msgbus::Broker broker;
  std::shared_ptr<LinkFaultInjector> injector;
  std::shared_ptr<msgbus::SubSocket> sub;
  std::shared_ptr<msgbus::PubSocket> pub;
};

TEST(LinkFaultInjectorTest, CertainDropDiscardsEverything) {
  LinkRig rig(make_link_plan("link 0 inf drop 1.0"));
  for (int i = 0; i < 10; ++i) {
    rig.pub->publish("t/x", "payload");
  }
  EXPECT_FALSE(rig.sub->try_recv().has_value());
  EXPECT_EQ(rig.sub->dropped(), 10U);
  EXPECT_EQ(rig.injector->stats().dropped, 10U);
  EXPECT_EQ(rig.injector->stats().outage_dropped, 0U);
}

TEST(LinkFaultInjectorTest, OutageDropsOnlyInsideWindow) {
  LinkRig rig(make_link_plan("link 1 2 outage"));
  rig.pub->publish("t/x", "before");  // t = 0
  rig.clock.advance(to_nanos(1.5));
  rig.pub->publish("t/x", "during");
  rig.clock.advance(to_nanos(1.0));  // t = 2.5
  rig.pub->publish("t/x", "after");

  std::vector<std::string> got;
  while (auto msg = rig.sub->try_recv()) {
    got.push_back(msg->payload);
  }
  EXPECT_EQ(got, (std::vector<std::string>{"before", "after"}));
  EXPECT_EQ(rig.injector->stats().outage_dropped, 1U);
  EXPECT_EQ(rig.injector->stats().dropped, 1U);
}

TEST(LinkFaultInjectorTest, CertainDuplicationDeliversTwice) {
  LinkRig rig(make_link_plan("link 0 inf duplicate 1.0"));
  rig.pub->publish("t/x", "one");
  int copies = 0;
  while (auto msg = rig.sub->try_recv()) {
    EXPECT_EQ(msg->payload, "one");
    ++copies;
  }
  EXPECT_EQ(copies, 2);
  EXPECT_EQ(rig.sub->duplicated(), 1U);
  EXPECT_EQ(rig.injector->stats().duplicated, 1U);
}

TEST(LinkFaultInjectorTest, CorruptionMutatesPayloadInFlight) {
  LinkRig rig(make_link_plan("link 0 inf corrupt 1.0"));
  const std::string original = "0123456789";
  rig.pub->publish("t/x", original);
  const auto msg = rig.sub->try_recv();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload.size(), original.size());
  EXPECT_NE(msg->payload, original);  // xor mask is never zero
  EXPECT_EQ(rig.injector->stats().corrupted, 1U);
}

TEST(LinkFaultInjectorTest, TruncationShortensPayload) {
  LinkRig rig(make_link_plan("link 0 inf truncate 1.0"));
  const std::string original = "0123456789";
  rig.pub->publish("t/x", original);
  const auto msg = rig.sub->try_recv();
  ASSERT_TRUE(msg.has_value());
  EXPECT_LT(msg->payload.size(), original.size());
  EXPECT_EQ(rig.injector->stats().truncated, 1U);
}

TEST(LinkFaultInjectorTest, JitterDelaysAndReordersDeliveries) {
  // 0.2 s of jitter across messages published 10 ms apart: some later
  // messages must overtake earlier ones (deterministic for a fixed seed).
  LinkRig rig(make_link_plan("link 0 inf delay 0.01 jitter 0.2"));
  constexpr int kCount = 30;
  for (int i = 0; i < kCount; ++i) {
    rig.pub->publish("t/x", std::to_string(i));
    rig.clock.advance(msec(10));
  }
  rig.clock.advance(to_nanos(1.0));  // past every possible deliver_at

  std::vector<int> order;
  while (auto msg = rig.sub->try_recv()) {
    order.push_back(std::stoi(msg->payload));
  }
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kCount));  // none lost
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));   // reordered
  EXPECT_EQ(rig.injector->stats().delayed, static_cast<std::uint64_t>(kCount));
}

TEST(LinkFaultInjectorTest, SameSeedSameFaultSequence) {
  const FaultPlan plan =
      make_link_plan("link 0 inf drop 0.4 duplicate 0.2 corrupt 0.1");
  auto run = [&plan] {
    LinkRig rig(plan);
    std::vector<std::string> got;
    for (int i = 0; i < 200; ++i) {
      rig.pub->publish("t/x", "m" + std::to_string(i));
    }
    while (auto msg = rig.sub->try_recv()) {
      got.push_back(msg->payload);
    }
    return std::make_pair(got, rig.injector->stats());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second.dropped, 0U);
  EXPECT_GT(a.second.duplicated, 0U);
}

TEST(LinkFaultInjectorTest, DifferentSeedsDiverge) {
  auto run = [](std::uint64_t seed) {
    std::istringstream is("seed " + std::to_string(seed) +
                          "\nlink 0 inf drop 0.5\n");
    const FaultPlan plan = FaultPlan::parse(is);
    LinkRig rig(plan);
    std::vector<std::string> got;
    for (int i = 0; i < 100; ++i) {
      rig.pub->publish("t/x", std::to_string(i));
    }
    while (auto msg = rig.sub->try_recv()) {
      got.push_back(msg->payload);
    }
    return got;
  };
  EXPECT_NE(run(1), run(2));
}

// -------------------------------------------------------- msr injector --

TEST(MsrFaultInjectorTest, CertainReadFailureThrowsEio) {
  std::istringstream is("msr 0 inf read_fail 1.0\n");
  const FaultPlan plan = FaultPlan::parse(is);
  ManualTimeSource clock;
  MsrFaultInjector injector(plan, clock);
  msr::EmulatedMsr dev(1);
  dev.define(0x611, 7);
  injector.install(dev);

  EXPECT_THROW((void)dev.read(0, 0x611), msr::MsrError);
  EXPECT_EQ(injector.stats().read_failures, 1U);
  EXPECT_EQ(dev.faulted_accesses(), 1U);
  // Writes are unaffected by read_fail.
  dev.write(0, 0x611, 9);
  EXPECT_EQ(dev.peek(0, 0x611), 9U);
}

TEST(MsrFaultInjectorTest, StuckRegisterSwallowsWritesInWindow) {
  std::istringstream is("msr 1 2 stuck 0x610\n");
  const FaultPlan plan = FaultPlan::parse(is);
  ManualTimeSource clock;
  MsrFaultInjector injector(plan, clock);
  msr::EmulatedMsr dev(1);
  dev.define(0x610, 100);
  dev.define(0x611, 0);
  injector.install(dev);

  dev.write(0, 0x610, 200);  // t = 0: before the episode
  EXPECT_EQ(dev.peek(0, 0x610), 200U);

  clock.advance(to_nanos(1.5));       // inside [1, 2)
  dev.write(0, 0x610, 300);           // silently swallowed
  EXPECT_EQ(dev.peek(0, 0x610), 200U);
  EXPECT_EQ(dev.read(0, 0x610), 200U);  // reads still work
  dev.write(0, 0x611, 42);              // other registers unaffected
  EXPECT_EQ(dev.peek(0, 0x611), 42U);
  EXPECT_EQ(injector.stats().dropped_writes, 1U);
  EXPECT_EQ(dev.dropped_writes(), 1U);

  clock.advance(to_nanos(1.0));  // t = 2.5: episode over
  dev.write(0, 0x610, 400);
  EXPECT_EQ(dev.peek(0, 0x610), 400U);
}

TEST(MsrFaultInjectorTest, RegScopingLimitsFailures) {
  std::istringstream is("msr 0 inf read_fail 1.0 reg 0x611\n");
  const FaultPlan plan = FaultPlan::parse(is);
  ManualTimeSource clock;
  MsrFaultInjector injector(plan, clock);
  msr::EmulatedMsr dev(1);
  dev.define(0x610, 1);
  dev.define(0x611, 2);
  injector.install(dev);

  EXPECT_EQ(dev.read(0, 0x610), 1U);  // unscoped register unaffected
  EXPECT_THROW((void)dev.read(0, 0x611), msr::MsrError);
}

// ------------------------------------------- wraparound under failures --

class WrapUnderEioTest : public ::testing::Test {
 protected:
  WrapUnderEioTest() : dev_(1) {
    dev_.define(msr::kMsrRaplPowerUnit, rapl::RaplUnits::encode(3, 14, 10));
    dev_.define(msr::kMsrPkgEnergyStatus, 0);
    dev_.define(msr::kMsrPkgPowerLimit, 0);
    dev_.define(msr::kIa32PerfCtl, 0);
    dev_.define(msr::kIa32PerfStatus, 0);
    dev_.define(msr::kIa32ClockModulation, 0);
    dev_.define(msr::kMsrDramEnergyStatus, 0);
    dev_.define(msr::kMsrDramPowerLimit, 0);
  }

  msr::EmulatedMsr dev_;
  ManualTimeSource clock_;
};

TEST_F(WrapUnderEioTest, RetryAfterEioCountsWrapOnce) {
  rapl::RaplInterface rapl(dev_, clock_);  // primes at raw counter 0

  // Move the counter close to the 32-bit wrap point and sample it.
  dev_.poke(0, msr::kMsrPkgEnergyStatus, 0xFFFFFF00U);
  const Joules before = rapl.pkg_energy();
  EXPECT_EQ(rapl.pkg_energy_wraps(), 0U);

  // Energy reads fail with EIO over [1, 2) s.
  std::istringstream is("msr 1 2 read_fail 1.0 reg 0x611\n");
  const FaultPlan plan = FaultPlan::parse(is);
  MsrFaultInjector injector(plan, clock_);
  injector.install(dev_);

  // The counter wraps while reads are failing.
  clock_.advance(to_nanos(1.5));
  dev_.poke(0, msr::kMsrPkgEnergyStatus, 0x00000100U);
  EXPECT_THROW((void)rapl.pkg_energy(), msr::MsrError);
  EXPECT_THROW((void)rapl.pkg_energy(), msr::MsrError);
  // Failed reads never touched the accumulator.
  EXPECT_EQ(rapl.pkg_energy_wraps(), 0U);

  // Retry after the episode: exactly one wrap, and the energy delta is
  // the true modular distance — not double-counted by the retries.
  clock_.advance(to_nanos(1.0));
  const Joules after = rapl.pkg_energy();
  EXPECT_EQ(rapl.pkg_energy_wraps(), 1U);
  const double unit = rapl.units().energy_unit;
  const double expected_delta =
      (static_cast<double>(0x100000000ULL) - 0xFFFFFF00U + 0x100U) * unit;
  EXPECT_NEAR(after - before, expected_delta, 1e-9);

  // A further read without counter movement adds nothing.
  EXPECT_NEAR(rapl.pkg_energy() - after, 0.0, 1e-12);
  EXPECT_EQ(rapl.pkg_energy_wraps(), 1U);
}

TEST_F(WrapUnderEioTest, PowerMeterSpansFailureGap) {
  rapl::RaplInterface rapl(dev_, clock_);
  const double unit = rapl.units().energy_unit;
  (void)rapl.pkg_power();  // prime

  std::istringstream is("msr 1 2 read_fail 1.0 reg 0x611\n");
  const FaultPlan plan = FaultPlan::parse(is);
  MsrFaultInjector injector(plan, clock_);
  injector.install(dev_);

  clock_.advance(to_nanos(1.5));
  EXPECT_THROW((void)rapl.pkg_power(), msr::MsrError);

  // 200 J consumed over the full 4 s window -> 50 W average, with the
  // failed read contributing neither a sample nor a timestamp.
  clock_.advance(to_nanos(2.5));
  dev_.poke(0, msr::kMsrPkgEnergyStatus,
            static_cast<std::uint64_t>(200.0 / unit));
  EXPECT_NEAR(rapl.pkg_power(), 50.0, 0.1);
}

}  // namespace
}  // namespace procap::fault
