// Tests for the cluster-wide FlowTracer: flow lifecycle (decision →
// actuation → effect), the jitter threshold, the head+tail sampling
// policy and its determinism fingerprint, orphan handling, span
// accounting, ring eviction, the batched-vs-fused advance equivalence,
// the one-lock rollup, and the /traces.json + Perfetto exports (parsed
// with the in-repo JSON reader, filters included).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace procap::obs {
namespace {

constexpr Nanos kTick = msec(250);

FlowTracerOptions keep_all() {
  FlowTracerOptions options;
  options.sample_period = 1;
  options.seed = 42;
  return options;
}

GrantChange change(unsigned node, double from_w, double to_w) {
  return GrantChange{node, from_w, to_w};
}

/// One tick where `nodes` all heartbeat at `rate`.
std::vector<FlowTick> beat(const std::vector<unsigned>& nodes, double rate) {
  std::vector<FlowTick> ticks;
  for (unsigned node : nodes) {
    ticks.push_back(FlowTick{.node = node, .effect = true, .rate = rate});
  }
  return ticks;
}

TEST(FlowTracer, LifecycleRecordsTickLatency) {
  FlowTracer tracer(keep_all());
  tracer.epoch_decision(0, 0, {change(0, 100.0, 110.0),
                               change(3, 100.0, 90.0)});

  FlowTracerStats stats = tracer.stats();
  EXPECT_EQ(stats.opened, 2u);
  EXPECT_EQ(stats.open, 2u);
  EXPECT_EQ(stats.epochs, 1u);

  tracer.advance(kTick, beat({0, 3}, 2.5));
  stats = tracer.stats();
  EXPECT_EQ(stats.closed, 2u);
  EXPECT_EQ(stats.open, 0u);
  EXPECT_EQ(stats.kept, 2u);
  EXPECT_EQ(stats.epochs_closed, 1u);

  const std::vector<FlowRecord> kept = tracer.kept_flows();
  ASSERT_EQ(kept.size(), 2u);
  for (const FlowRecord& flow : kept) {
    EXPECT_EQ(flow.state, FlowState::kClosed);
    EXPECT_EQ(flow.t_actuate, kTick);
    EXPECT_EQ(flow.t_effect, kTick);
    EXPECT_EQ(flow.latency, kTick);
    EXPECT_DOUBLE_EQ(flow.rate, 2.5);
  }
  EXPECT_EQ(kept[0].node, 0u);
  EXPECT_EQ(kept[1].node, 3u);
}

TEST(FlowTracer, MinChangeFiltersJitterNotDecisions) {
  FlowTracerOptions options = keep_all();
  options.min_change_w = 2.0;
  FlowTracer tracer(options);

  // 1 W of re-balancing jitter opens nothing; a 2 W (threshold is
  // inclusive) and an 8 W decision both trace.
  tracer.epoch_decision(0, 0, {change(0, 100.0, 101.0),
                               change(1, 100.0, 102.0),
                               change(2, 100.0, 92.0)});
  EXPECT_EQ(tracer.stats().opened, 2u);

  // min_change_w = 0 traces every change.
  FlowTracerOptions all = keep_all();
  all.min_change_w = 0.0;
  FlowTracer verbose(all);
  verbose.epoch_decision(0, 0, {change(0, 100.0, 100.1)});
  EXPECT_EQ(verbose.stats().opened, 1u);
}

TEST(FlowTracer, HeadSamplingIsDeterministicAndSeedSalted) {
  FlowTracerOptions options;
  options.sample_period = 4;
  options.seed = 7;

  struct Fingerprint {
    std::uint64_t hash = 0;
    std::uint64_t kept = 0;
  };
  const auto run = [](const FlowTracerOptions& opt) {
    FlowTracer tracer(opt);
    Nanos now = 0;
    for (std::uint64_t epoch = 0; epoch < 16; ++epoch) {
      std::vector<GrantChange> changes;
      for (unsigned node = 0; node < 32; ++node) {
        changes.push_back(change(node, 100.0, 110.0));
      }
      tracer.epoch_decision(epoch, now, changes);
      now += kTick;
      std::vector<unsigned> nodes(32);
      for (unsigned node = 0; node < 32; ++node) {
        nodes[node] = node;
      }
      tracer.advance(now, beat(nodes, 1.0));
    }
    return Fingerprint{tracer.kept_hash(), tracer.stats().kept};
  };

  const Fingerprint a = run(options);
  const Fingerprint b = run(options);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.kept, b.kept);
  // Roughly 1-in-4 of 512 closes survive the head sample.
  EXPECT_GT(a.kept, 64u);
  EXPECT_LT(a.kept, 256u);

  options.seed = 8;
  const Fingerprint c = run(options);
  EXPECT_NE(a.hash, c.hash);
}

TEST(FlowTracer, SlowFlowsAlwaysKept) {
  FlowTracerOptions options;
  options.sample_period = 0;  // head sampling keeps nothing
  options.slow_latency = msec(500);
  options.seed = 42;
  FlowTracer tracer(options);

  tracer.epoch_decision(0, 0, {change(0, 100.0, 110.0),
                               change(1, 100.0, 110.0)});
  // Node 0 closes fast (dropped); node 1 straggles past the tail
  // threshold (kept).
  tracer.advance(kTick, beat({0}, 1.0));
  tracer.advance(3 * kTick, beat({1}, 1.0));

  const FlowTracerStats stats = tracer.stats();
  EXPECT_EQ(stats.closed, 2u);
  EXPECT_EQ(stats.dropped, 1u);
  ASSERT_EQ(stats.kept, 1u);
  const std::vector<FlowRecord> kept = tracer.kept_flows();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].node, 1u);
  EXPECT_EQ(kept[0].keep, KeepReason::kSlow);
  EXPECT_EQ(kept[0].latency, 3 * kTick);
}

TEST(FlowTracer, OrphansAlwaysKeptWithReason) {
  FlowTracerOptions options;
  options.sample_period = 0;  // orphans must survive even keep-nothing
  options.seed = 42;
  FlowTracer tracer(options);

  tracer.epoch_decision(0, 0, {change(2, 100.0, 110.0)});
  tracer.orphan(2, kTick, "node_death");

  const FlowTracerStats stats = tracer.stats();
  EXPECT_EQ(stats.orphaned, 1u);
  EXPECT_EQ(stats.open, 0u);
  EXPECT_EQ(stats.epochs_closed, 1u);  // orphaning resolves the span
  const std::vector<FlowRecord> kept = tracer.kept_flows();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].state, FlowState::kOrphaned);
  EXPECT_EQ(kept[0].keep, KeepReason::kOrphan);
  EXPECT_STREQ(kept[0].orphan_reason, "node_death");

  // A second orphan for the same node is a no-op (no open flow).
  tracer.orphan(2, 2 * kTick, "node_left");
  EXPECT_EQ(tracer.stats().orphaned, 1u);
}

TEST(FlowTracer, StaleGrantOrphansThePreviousFlow) {
  FlowTracer tracer(keep_all());
  tracer.epoch_decision(0, 0, {change(4, 100.0, 110.0)});
  // Node 4 never heartbeats before the next decision re-grants it: the
  // first flow's effect can no longer be isolated.
  tracer.epoch_decision(1, 4 * kTick, {change(4, 110.0, 120.0)});

  const FlowTracerStats stats = tracer.stats();
  EXPECT_EQ(stats.opened, 2u);
  EXPECT_EQ(stats.orphaned, 1u);
  EXPECT_EQ(stats.open, 1u);

  const std::vector<FlowRecord> kept = tracer.kept_flows();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_STREQ(kept[0].orphan_reason, "stale_grant");
  EXPECT_EQ(kept[0].epoch, 0u);

  tracer.advance(5 * kTick, beat({4}, 1.0));
  EXPECT_EQ(tracer.stats().closed, 1u);
  EXPECT_EQ(tracer.stats().epochs_closed, 2u);
}

TEST(FlowTracer, RingCapacityEvictsOldestKeptFlow) {
  FlowTracerOptions options = keep_all();
  options.capacity = 2;
  FlowTracer tracer(options);

  Nanos now = 0;
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    tracer.epoch_decision(epoch, now, {change(0, 100.0, 110.0)});
    now += kTick;
    tracer.advance(now, beat({0}, 1.0));
  }

  const FlowTracerStats stats = tracer.stats();
  EXPECT_EQ(stats.kept, 3u);
  EXPECT_EQ(stats.evicted, 1u);
  const std::vector<FlowRecord> kept = tracer.kept_flows();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].epoch, 1u);  // epoch 0's flow was evicted
  EXPECT_EQ(kept[1].epoch, 2u);
}

TEST(FlowTracer, FusedAdvanceMatchesBatched) {
  struct Ctx {
    unsigned closer = 0;
  };

  const auto drive = [](FlowTracer& tracer, bool fused) {
    Nanos now = 0;
    for (std::uint64_t epoch = 0; epoch < 8; ++epoch) {
      std::vector<GrantChange> changes;
      for (unsigned node = 0; node < 8; ++node) {
        changes.push_back(change(node, 100.0, 110.0));
      }
      tracer.epoch_decision(epoch, now, changes);
      // Two ticks: even nodes close on the first, odd on the second.
      for (unsigned tick = 0; tick < 2; ++tick) {
        now += kTick;
        Ctx ctx{tick};
        if (fused) {
          tracer.advance(
              now,
              [](unsigned node, void* raw) -> FlowTick {
                const auto* c = static_cast<const Ctx*>(raw);
                return FlowTick{.node = node,
                                .effect = node % 2 == c->closer,
                                .rate = 1.0};
              },
              &ctx);
        } else {
          std::vector<FlowTick> ticks;
          for (unsigned node = 0; node < 8; ++node) {
            ticks.push_back(FlowTick{.node = node,
                                     .effect = node % 2 == ctx.closer,
                                     .rate = 1.0});
          }
          tracer.advance(now, ticks);
        }
      }
    }
  };

  FlowTracer batched(keep_all());
  FlowTracer fused(keep_all());
  drive(batched, false);
  drive(fused, true);
  EXPECT_EQ(batched.kept_hash(), fused.kept_hash());
  EXPECT_EQ(batched.stats().closed, fused.stats().closed);
  EXPECT_EQ(batched.stats().kept, fused.stats().kept);
}

TEST(FlowTracer, FusedAdvanceSkipLeavesFlowUntouched) {
  FlowTracer tracer(keep_all());
  tracer.epoch_decision(0, 0, {change(0, 100.0, 110.0)});
  tracer.advance(
      kTick,
      [](unsigned node, void*) -> FlowTick {
        return FlowTick{.node = node, .skip = true};
      },
      nullptr);
  const FlowTracerStats stats = tracer.stats();
  EXPECT_EQ(stats.open, 1u);
  EXPECT_EQ(stats.closed, 0u);

  const std::vector<FlowRecord> kept = tracer.kept_flows();
  EXPECT_TRUE(kept.empty());
  tracer.advance(2 * kTick, beat({0}, 1.0));
  ASSERT_EQ(tracer.kept_flows().size(), 1u);
  // The skipped tick did not actuate: the first touch was the close.
  EXPECT_EQ(tracer.kept_flows()[0].t_actuate, 2 * kTick);
}

TEST(FlowTracer, QuantilesAndRollupAgree) {
  FlowTracer tracer(keep_all());
  // Latencies 1, 1, 2 and 3 ticks: p50 = 250 ms, max = 750 ms.
  tracer.epoch_decision(0, 0, {change(0, 100.0, 110.0),
                               change(1, 100.0, 110.0),
                               change(2, 100.0, 110.0),
                               change(3, 100.0, 110.0)});
  tracer.advance(kTick, beat({0, 1}, 1.0));
  tracer.advance(2 * kTick, beat({2}, 1.0));
  tracer.advance(3 * kTick, beat({3}, 1.0));

  EXPECT_DOUBLE_EQ(tracer.latency_quantile(0.5), 0.25);
  EXPECT_DOUBLE_EQ(tracer.latency_quantile(1.0), 0.75);

  const double qs[3] = {0.5, 0.9, 1.0};
  double batched[3] = {0.0, 0.0, 0.0};
  tracer.latency_quantiles(qs, batched, 3);
  EXPECT_DOUBLE_EQ(batched[0], tracer.latency_quantile(0.5));
  EXPECT_DOUBLE_EQ(batched[1], tracer.latency_quantile(0.9));
  EXPECT_DOUBLE_EQ(batched[2], tracer.latency_quantile(1.0));

  // rollup == stats + latency_quantiles + last_latency_ms_into.
  FlowTracerStats rolled;
  double fused[3] = {0.0, 0.0, 0.0};
  std::vector<double> last_ms;
  tracer.rollup(rolled, qs, fused, 3, last_ms);
  EXPECT_EQ(rolled.closed, tracer.stats().closed);
  EXPECT_EQ(rolled.open, tracer.stats().open);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(fused[i], batched[i]);
  }
  std::vector<double> direct;
  tracer.last_latency_ms_into(direct);
  EXPECT_EQ(last_ms, direct);
  ASSERT_GE(last_ms.size(), 4u);
  EXPECT_DOUBLE_EQ(last_ms[0], 250.0);
  EXPECT_DOUBLE_EQ(last_ms[3], 750.0);
}

TEST(FlowTracer, TracesJsonFiltersApply) {
  FlowTracer tracer(keep_all());
  tracer.set_meta("strategy", "demand");
  Nanos now = 0;
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    tracer.epoch_decision(epoch, now, {change(0, 100.0, 110.0),
                                       change(1, 100.0, 110.0)});
    now += kTick;
    // Node 1's flow in epoch 2 straggles one extra tick.
    if (epoch == 2) {
      tracer.advance(now, beat({0}, 1.0));
      now += kTick;
      tracer.advance(now, beat({1}, 1.0));
    } else {
      tracer.advance(now, beat({0, 1}, 1.0));
    }
  }

  const auto dump = [&tracer](const TraceQuery& query) {
    std::ostringstream os;
    tracer.write_traces_json(os, query);
    return json::parse(os.str());
  };

  const json::Value all = dump({});
  ASSERT_TRUE(all.is_object());
  EXPECT_EQ(all.find("meta")->string_or("strategy", "?"), "demand");
  ASSERT_NE(all.find("flows"), nullptr);
  EXPECT_EQ(all.find("flows")->array.size(), 6u);
  EXPECT_EQ(all.find("stats")->number_or("closed", -1.0), 6.0);

  TraceQuery by_epoch;
  by_epoch.epoch = 1;
  EXPECT_EQ(dump(by_epoch).find("flows")->array.size(), 2u);

  TraceQuery by_node;
  by_node.node = 0;
  EXPECT_EQ(dump(by_node).find("flows")->array.size(), 3u);

  TraceQuery slow_only;
  slow_only.min_latency_ms = 400.0;
  const json::Value slow = dump(slow_only);
  ASSERT_EQ(slow.find("flows")->array.size(), 1u);
  const json::Value& flow = slow.find("flows")->array[0];
  EXPECT_EQ(flow.number_or("node", -1.0), 1.0);
  EXPECT_EQ(flow.number_or("epoch", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(flow.number_or("latency_ms", -1.0), 500.0);

  TraceQuery stats_only;
  stats_only.include_flows = false;
  EXPECT_EQ(dump(stats_only).find("flows"), nullptr);
}

TEST(FlowTracer, PerfettoExportIsValidChromeTrace) {
  FlowTracer tracer(keep_all());
  tracer.epoch_decision(0, 0, {change(0, 100.0, 110.0)});
  tracer.advance(kTick, beat({0}, 1.0));

  std::ostringstream os;
  tracer.write_perfetto(os);
  const json::Value doc = json::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_FALSE(events->array.empty());
  // The flow arrows ("s" start / "f" finish) that make the cap-to-effect
  // path visible must be present.
  bool saw_start = false;
  bool saw_finish = false;
  for (const json::Value& event : events->array) {
    const std::string ph = event.string_or("ph", "");
    saw_start = saw_start || ph == "s";
    saw_finish = saw_finish || ph == "f";
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_finish);
}

}  // namespace
}  // namespace procap::obs
