// Tests for the progress model: Eqs (1)-(7), inversion identities, and
// alpha fitting, including parameterized property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "model/beta.hpp"
#include "model/fit.hpp"
#include "model/progress_model.hpp"

namespace procap::model {
namespace {

TEST(Beta, TimeDilationIdentityAtFmax) {
  EXPECT_DOUBLE_EQ(time_dilation(0.7, 3.3e9, 3.3e9), 1.0);
}

TEST(Beta, ComputeBoundDoublesTimeAtHalfFrequency) {
  EXPECT_DOUBLE_EQ(time_dilation(1.0, 1.65e9, 3.3e9), 2.0);
}

TEST(Beta, MemoryBoundIsFrequencyInsensitive) {
  EXPECT_DOUBLE_EQ(time_dilation(0.0, 1.2e9, 3.3e9), 1.0);
}

TEST(Beta, FromTimesInvertsDilation) {
  // Paper procedure: times at 3300 and 1600 MHz.
  const double beta = 0.52;
  const Seconds t_max = 10.0;
  const Seconds t_probe = t_max * time_dilation(beta, 1.6e9, 3.3e9);
  EXPECT_NEAR(beta_from_times(t_probe, t_max, 1.6e9, 3.3e9), beta, 1e-12);
}

TEST(Beta, FromRatesMatchesFromTimes) {
  const double beta = 0.84;
  const double r_max = 16.0;
  const double r_probe = r_max / time_dilation(beta, 1.6e9, 3.3e9);
  EXPECT_NEAR(beta_from_rates(r_probe, r_max, 1.6e9, 3.3e9), beta, 1e-12);
}

TEST(Beta, ClampedToUnitInterval) {
  // Noise can push the raw value over 1: T doubled at half frequency+.
  EXPECT_DOUBLE_EQ(beta_from_times(2.3, 1.0, 1.65e9, 3.3e9), 1.0);
  EXPECT_DOUBLE_EQ(beta_from_times(0.9, 1.0, 1.65e9, 3.3e9), 0.0);
}

TEST(Beta, RejectsBadArguments) {
  EXPECT_THROW((void)beta_from_times(0.0, 1.0, 1e9, 2e9), std::invalid_argument);
  EXPECT_THROW((void)beta_from_times(1.0, 1.0, 2e9, 2e9), std::invalid_argument);
  EXPECT_THROW((void)time_dilation(0.5, -1.0, 2e9), std::invalid_argument);
}

ModelParams params_for(double beta, double alpha = 2.0) {
  ModelParams p;
  p.beta = beta;
  p.alpha = alpha;
  p.p_core_max = 120.0;
  p.r_max = 16.0;
  return p;
}

TEST(ProgressModel, UncappedPredictsRmax) {
  const auto p = params_for(0.84);
  EXPECT_DOUBLE_EQ(progress_at_core_power(p, 120.0), 16.0);
  EXPECT_DOUBLE_EQ(progress_at_core_power(p, 500.0), 16.0);
  EXPECT_DOUBLE_EQ(delta_progress(p, 500.0), 0.0);
}

TEST(ProgressModel, Eq4KnownValue) {
  // beta=1, alpha=2: halving power scales rate by 1/sqrt(2).
  const auto p = params_for(1.0);
  EXPECT_NEAR(progress_at_core_power(p, 60.0), 16.0 / std::sqrt(2.0), 1e-9);
}

TEST(ProgressModel, MemoryBoundUnaffected) {
  const auto p = params_for(0.0);
  EXPECT_DOUBLE_EQ(progress_at_core_power(p, 10.0), 16.0);
}

TEST(ProgressModel, Eq5CoreBudgetSplit) {
  EXPECT_DOUBLE_EQ(effective_core_cap(0.37, 100.0), 37.0);
  EXPECT_THROW((void)effective_core_cap(1.5, 100.0), std::invalid_argument);
  EXPECT_THROW((void)effective_core_cap(0.5, -1.0), std::invalid_argument);
}

TEST(ProgressModel, ValidatesParams) {
  auto p = params_for(0.5);
  p.beta = 1.5;
  EXPECT_THROW((void)progress_at_core_power(p, 50.0), std::invalid_argument);
  p = params_for(0.5);
  p.r_max = 0.0;
  EXPECT_THROW((void)progress_at_core_power(p, 50.0), std::invalid_argument);
  p = params_for(0.5);
  EXPECT_THROW((void)progress_at_core_power(p, 0.0), std::invalid_argument);
}

TEST(ProgressModel, HigherBetaMeansBiggerImpact) {
  const double delta_compute = delta_progress(params_for(1.0), 60.0);
  const double delta_memory = delta_progress(params_for(0.3), 60.0);
  EXPECT_GT(delta_compute, delta_memory);
}

TEST(ProgressModel, PkgCapWrapperAppliesEq5) {
  const auto p = params_for(0.5);
  EXPECT_DOUBLE_EQ(progress_at_pkg_cap(p, 100.0),
                   progress_at_core_power(p, 50.0));
}

// Inversion property across the parameter space.
struct InversionCase {
  double beta;
  double alpha;
  double cap_fraction;
};

class ModelInversion : public ::testing::TestWithParam<InversionCase> {};

TEST_P(ModelInversion, CapForProgressRoundTrips) {
  const auto [beta, alpha, frac] = GetParam();
  ModelParams p = params_for(beta, alpha);
  const Watts cap = p.p_core_max * frac;
  const double rate = progress_at_core_power(p, cap);
  const Watts recovered = core_power_for_progress(p, rate);
  EXPECT_NEAR(recovered, cap, 1e-6 * cap);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSweep, ModelInversion,
    ::testing::Values(InversionCase{1.0, 2.0, 0.5},
                      InversionCase{1.0, 2.0, 0.25},
                      InversionCase{0.84, 2.0, 0.6},
                      InversionCase{0.52, 1.5, 0.4},
                      InversionCase{0.37, 3.0, 0.7},
                      InversionCase{0.93, 2.5, 0.33},
                      InversionCase{0.1, 2.0, 0.8},
                      InversionCase{0.64, 4.0, 0.9}));

class ModelMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(ModelMonotonicity, RateIncreasesWithPower) {
  const auto p = params_for(GetParam());
  double prev = 0.0;
  for (Watts w = 10.0; w <= 120.0; w += 10.0) {
    const double r = progress_at_core_power(p, w);
    EXPECT_GE(r, prev);
    EXPECT_LE(r, p.r_max + 1e-12);
    prev = r;
  }
}

INSTANTIATE_TEST_SUITE_P(BetaSweep, ModelMonotonicity,
                         ::testing::Values(0.0, 0.2, 0.37, 0.52, 0.84, 0.93,
                                           1.0));

TEST(ProgressModel, TargetAboveRmaxReturnsPmax) {
  const auto p = params_for(0.8);
  EXPECT_DOUBLE_EQ(core_power_for_progress(p, 17.0), 120.0);
  EXPECT_THROW((void)core_power_for_progress(p, 0.0), std::invalid_argument);
}

// ---- fit/evaluate ------------------------------------------------------

std::vector<CapObservation> synthetic_observations(double beta, double alpha,
                                                   double noise = 0.0) {
  ModelParams truth = params_for(beta, alpha);
  std::vector<CapObservation> obs;
  for (Watts cap = 30.0; cap <= 110.0; cap += 10.0) {
    const double delta = delta_progress(truth, cap);
    obs.push_back({cap, delta * (1.0 + noise)});
  }
  return obs;
}

TEST(Fit, EvaluateReportsSignedError) {
  const auto obs = synthetic_observations(0.84, 2.0);
  const auto points = evaluate(params_for(0.84, 2.0), obs);
  for (const auto& pt : points) {
    EXPECT_NEAR(pt.error_pct, 0.0, 1e-9);
  }
  const auto summary = summarize(points);
  EXPECT_NEAR(summary.mape, 0.0, 1e-9);
  EXPECT_NEAR(summary.rmse, 0.0, 1e-9);
}

TEST(Fit, BiasSignMatchesDirection) {
  // Model with too-large alpha underestimates impact -> negative bias.
  const auto obs = synthetic_observations(1.0, 2.0);
  const auto under = summarize(evaluate(params_for(1.0, 3.5), obs));
  EXPECT_LT(under.bias_pct, 0.0);
  const auto over = summarize(evaluate(params_for(1.0, 1.2), obs));
  EXPECT_GT(over.bias_pct, 0.0);
}

TEST(Fit, RecoversTrueAlpha) {
  for (const double truth : {1.5, 2.0, 2.4, 3.0}) {
    const auto obs = synthetic_observations(0.84, truth);
    const AlphaFit fit = fit_alpha(params_for(0.84), obs);
    EXPECT_NEAR(fit.alpha, truth, 0.05) << "alpha=" << truth;
    EXPECT_LT(fit.mape, 1.0);
  }
}

TEST(Fit, RejectsBadInput) {
  const std::vector<CapObservation> none;
  EXPECT_THROW((void)fit_alpha(params_for(0.5), none), std::invalid_argument);
  const auto obs = synthetic_observations(0.5, 2.0);
  EXPECT_THROW((void)fit_alpha(params_for(0.5), obs, 2.0, 1.0),
               std::invalid_argument);
}

TEST(Fit, SummaryOfEmptyIsZero) {
  const std::vector<PointError> none;
  const auto summary = summarize(none);
  EXPECT_DOUBLE_EQ(summary.mape, 0.0);
  EXPECT_DOUBLE_EQ(summary.rmse, 0.0);
}

}  // namespace
}  // namespace procap::model
