// capplan — pick a power budget for a target progress rate.
//
// The paper's third modeling goal (Section VI): "be able to decide on the
// exact power budget to be employed given an expectation of online
// performance."  This tool runs the full workflow for one application of
// the suite:
//
//   1. characterize: beta, MPO, uncapped rate and power (Section IV-A);
//   2. invert Eq. (7) for the package cap sustaining the target rate;
//   3. verify the plan by simulation, reporting planned vs achieved.
//
// Usage: capplan [app] [target_fraction]
//        capplan qmcpack-dmc 0.8
#include <cstdlib>
#include <iostream>
#include <string>

#include "exp/measure.hpp"
#include "model/progress_model.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace procap;
  const std::string app_name = argc > 1 ? argv[1] : "qmcpack-dmc";
  const double fraction = argc > 2 ? std::atof(argv[2]) : 0.8;
  if (fraction <= 0.0 || fraction >= 1.0) {
    std::cerr << "usage: capplan [app] [target_fraction in (0,1)]\n";
    return 2;
  }

  const auto app = apps::by_name(app_name);
  std::cout << "characterizing " << app_name << " ...\n";
  const auto c = exp::characterize(app, 1.6e9, 12.0);
  std::cout << "  beta=" << num(c.beta, 2) << "  MPO=" << sci(c.mpo, 2)
            << "  uncapped: " << num(c.rate_uncapped, 1) << " " << app.spec.unit
            << "/s @ " << num(c.power_uncapped, 1) << " W\n";

  model::ModelParams params;
  params.beta = c.beta;
  params.alpha = 2.0;
  params.p_core_max = c.beta * c.power_uncapped;
  params.r_max = c.rate_uncapped;

  const double target = fraction * c.rate_uncapped;
  const Watts planned_cap = model::pkg_cap_for_progress(params, target);
  std::cout << "\nplan: to sustain " << num(target, 1) << " " << app.spec.unit
            << "/s (" << num(fraction * 100.0, 0) << "% of uncapped), "
            << "cap the package at " << num(planned_cap, 1) << " W\n";

  std::cout << "verifying by simulation ...\n";
  const auto impact = exp::measure_cap_impact(app, planned_cap, 1);
  const double achieved = impact.rate_capped;
  TablePrinter table({"quantity", "planned", "achieved"});
  table.add_row({"package cap (W)", num(planned_cap, 1),
                 num(impact.power_capped, 1)});
  table.add_row({"progress (" + app.spec.unit + "/s)", num(target, 1),
                 num(achieved, 1)});
  table.add_row({"fraction of uncapped", num(fraction, 3),
                 num(achieved / impact.rate_uncapped, 3)});
  table.print(std::cout);

  const double err = (achieved - target) / target * 100.0;
  std::cout << "\nplan error: " << num(err, 1)
            << "% (the alpha=2 model bias; the NRM's feedback mode closes "
               "this gap at runtime — see nrm_daemon)\n";
  return 0;
}
