// listing1_imbalance — the paper's Listing 1 on real threads.
//
// Runs the equal- and unequal-work variants of the paper's MPI sample on
// the procap::minimpi runtime (ranks as threads, busy-wait barrier) and
// prints the same line the paper's code prints:
//
//   PROGRESS is 0.99 iterations per second
//
// regardless of the work pattern — the point of paper Table I: online
// performance (Definition 1) is identical even though the imbalanced
// variant wastes roughly half its cycles spinning at the barrier.
//
// Usage: listing1_imbalance [ranks] [iterations] [base_sleep_seconds]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "minimpi/minimpi.hpp"
#include "msgbus/bus.hpp"
#include "progress/monitor.hpp"
#include "progress/reporter.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace {

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

// Listing 1's do_(un)equal_work, parameterized by the base sleep.
void do_equal_work(int /*rank*/, int /*size*/, double base) {
  sleep_seconds(base);
}
void do_unequal_work(int rank, int size, double base) {
  sleep_seconds(base * static_cast<double>(rank) / size);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace procap;
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 3;
  const double base = argc > 3 ? std::atof(argv[3]) : 0.5;
  if (ranks <= 0 || iterations <= 0 || base <= 0.0) {
    std::cerr << "usage: listing1_imbalance [ranks] [iterations] [sleep_s]\n";
    return 2;
  }

  SteadyTimeSource clock;
  msgbus::Broker broker(clock);

  for (const bool unequal : {false, true}) {
    std::cout << "== " << (unequal ? "do_unequal_work" : "do_equal_work")
              << ", " << ranks << " ranks ==\n";
    progress::Monitor monitor(broker.make_sub(), "listing1", clock,
                              to_nanos(base));
    minimpi::run_world(ranks, [&](minimpi::RankCtx& ctx) {
      // Rank 0 owns the reporter, as the paper's rank 0 owns the print.
      std::unique_ptr<progress::Reporter> reporter;
      if (ctx.rank() == 0) {
        reporter = std::make_unique<progress::Reporter>(
            broker.make_pub(),
            progress::ReporterConfig{"listing1", "iterations"});
      }
      ctx.barrier();  // warm-up: absorb thread start-up skew
      for (int i = 0; i < iterations; ++i) {
        const Seconds start = ctx.wtime();
        if (unequal) {
          do_unequal_work(ctx.rank() + 1, ctx.size(), base);
        } else {
          do_equal_work(ctx.rank() + 1, ctx.size(), base);
        }
        ctx.barrier();
        const Seconds elapsed = ctx.wtime() - start;
        if (ctx.rank() == 0) {
          reporter->report(1.0);
          std::cout << "PROGRESS is " << num(1.0 / elapsed, 3)
                    << " iterations per second\n";
        }
      }
    });
    monitor.poll();
    std::cout << "monitor saw " << monitor.samples()
              << " progress samples, total "
              << num(monitor.total_work(), 0) << " iterations\n\n";
  }
  std::cout << "Same progress either way; the imbalanced variant burned its\n"
               "extra cycles busy-waiting at the barrier (paper Table I).\n";
  return 0;
}
