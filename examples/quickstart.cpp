// quickstart — instrument a real application loop with procap progress
// reporting and watch the windowed rate on the monitor side.
//
// This is the minimal end-to-end use of the library on *wall-clock time*
// (no simulator involved): a worker thread runs an iterative computation
// and publishes one progress sample per iteration; the main thread plays
// the role of the node's monitoring daemon, polling 250 ms windows and
// printing the observed rate.
//
//   $ ./quickstart
//   window  0.25s  rate 40.0 units/s
//   ...
//   online performance: mean 40.1 units/s, cv 2.1% -> consistent
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>

#include "msgbus/bus.hpp"
#include "progress/analysis.hpp"
#include "progress/monitor.hpp"
#include "progress/reporter.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace {

// Stand-in for a timestep of real work.  Paced with absolute deadlines so
// the demo's cadence is stable even on a loaded single-core host.
void do_science(std::chrono::steady_clock::time_point deadline) {
  std::this_thread::sleep_until(deadline);
}

}  // namespace

int main() {
  using namespace procap;

  SteadyTimeSource clock;
  msgbus::Broker broker(clock);

  // Application side: a Reporter at the natural loop level.
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    progress::Reporter reporter(broker.make_pub(),
                                {"quickstart", "work-units"});
    auto deadline = std::chrono::steady_clock::now();
    while (!stop.load()) {
      deadline += std::chrono::milliseconds(25);
      do_science(deadline);
      reporter.report(10.0);  // 10 work units per iteration
    }
  });

  // Monitoring side: 500 ms windows for a snappy demo (the paper uses 1 s).
  progress::Monitor monitor(broker.make_sub(), "quickstart", clock,
                            to_nanos(0.5));
  const auto t_end =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  std::uint64_t printed = 0;
  while (std::chrono::steady_clock::now() < t_end) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    monitor.poll();
    while (printed < monitor.windows()) {
      const auto& s = monitor.rates()[printed];
      std::cout << "window " << to_seconds(s.t - monitor.rates()[0].t)
                << "s  rate " << num(s.value, 1) << " units/s\n";
      ++printed;
    }
  }
  stop.store(true);
  worker.join();
  monitor.poll();

  const auto report = progress::analyze_consistency(monitor.rates(), 0.15);
  std::cout << "\nonline performance: mean " << num(report.mean_rate, 1)
            << " units/s, cv " << num(report.cv * 100.0, 1) << "% -> "
            << (report.consistent ? "consistent" : "fluctuating") << "\n"
            << "total work observed: " << num(monitor.total_work(), 0)
            << " units in " << monitor.windows() << " windows\n";
  return 0;
}
