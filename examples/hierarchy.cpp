// hierarchy — the paper's full Section II power-management hierarchy.
//
// One simulated machine, three levels of control:
//
//   system   SystemPowerManager divides the machine budget across jobs
//            by priority (water-filling with floors and ceilings);
//   job      each JobPowerManager distributes its share across its nodes
//            (critical-path policy: watts follow the slowest node);
//   node     each node's RAPL firmware enforces its cap, and the
//            instrumented application's progress is monitored online.
//
// Timeline:
//   t =  0 s  job "batch" (4 LAMMPS nodes, priority 1) runs alone
//   t = 25 s  job "urgent" (4 LAMMPS nodes, priority 4) arrives — the
//             paper's high-priority-arrival scenario: batch is squeezed
//   t = 60 s  urgent completes; batch's budget is restored
#include <iostream>
#include <memory>

#include "apps/suite.hpp"
#include "job/cluster.hpp"
#include "job/manager.hpp"
#include "job/system.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

int main() {
  using namespace procap;
  constexpr Watts kMachineBudget = 700.0;

  sim::Engine engine;
  job::ClusterSpec cluster_spec;
  cluster_spec.nodes = 4;
  cluster_spec.variability_cv = 0.08;

  job::Cluster batch(engine, apps::lammps(), cluster_spec);
  cluster_spec.seed = 99;
  job::Cluster urgent(engine, apps::lammps(), cluster_spec);

  job::JobManagerConfig job_config;
  job_config.policy = job::JobPolicy::kCriticalPath;
  job::JobPowerManager batch_mgr(batch, engine.time(), 600.0, job_config);
  job::JobPowerManager urgent_mgr(urgent, engine.time(), 600.0, job_config);
  batch_mgr.attach(engine);
  urgent_mgr.attach(engine);

  job::SystemPowerManager system(kMachineBudget);
  // Each 4-node LAMMPS job: floor 4 x 30 W, ceiling 4 x 155 W.
  system.add_job("batch", 1, batch_mgr, 120.0, 620.0);

  engine.at(to_nanos(25.0), [&](Nanos) {
    std::cout << ">>> t=25s: high-priority job 'urgent' admitted\n";
    system.add_job("urgent", 4, urgent_mgr, 120.0, 620.0);
  });
  engine.at(to_nanos(60.0), [&](Nanos) {
    std::cout << ">>> t=60s: 'urgent' completed, budget restored\n";
    system.remove_job("urgent");
  });

  TablePrinter table({"t (s)", "batch budget W", "batch job-rate",
                      "urgent budget W", "urgent job-rate",
                      "machine W granted"});
  engine.every(to_nanos(5.0), [&](Nanos now) {
    const bool urgent_running = system.jobs().size() == 2;
    table.add_row({num(to_seconds(now), 0),
                   num(system.budget_of("batch"), 0),
                   num(batch.job_rate(), 0),
                   urgent_running ? num(system.budget_of("urgent"), 0)
                                  : std::string("-"),
                   urgent_running ? num(urgent.job_rate(), 0)
                                  : std::string("-"),
                   num(system.total_granted(), 0)});
  });

  engine.run_for(to_nanos(85.0));
  table.print(std::cout);

  std::cout << "\nWhile 'urgent' ran, 'batch' was squeezed to its "
               "priority-weighted share;\nonline progress made the squeeze "
               "— and the recovery — observable at every level.\n";
  return 0;
}
