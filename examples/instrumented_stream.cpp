// instrumented_stream — a real STREAM-style kernel, instrumented exactly
// as the paper instruments STREAM (Section IV-B: "the iterative loop is
// instrumented to report progress as a single value for the application,
// once per iteration").
//
// Unlike the simulated workloads, this executes the actual copy / scale /
// add / triad operations over real arrays on a procap::minithread pool
// (the paper's codes use OpenMP threads), publishes one progress sample
// per iteration, and lets a live Monitor window the rate.  On a machine
// with the msr module loaded, pointing a RaplInterface at msr::DevMsr
// would add real package power next to the progress column.
//
// Usage: instrumented_stream [threads] [megabytes_per_array] [seconds]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "minithread/minithread.hpp"
#include "msgbus/bus.hpp"
#include "progress/analysis.hpp"
#include "progress/monitor.hpp"
#include "progress/reporter.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

int main(int argc, char** argv) {
  using namespace procap;
  const unsigned threads =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1]))
               : std::max(1U, std::thread::hardware_concurrency());
  const std::size_t mb = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 16;
  const double seconds = argc > 3 ? std::atof(argv[3]) : 3.0;
  const std::size_t n = mb * 1024 * 1024 / sizeof(double);

  std::cout << "STREAM-style kernel: " << threads << " threads, 3 arrays of "
            << mb << " MiB, " << seconds << " s\n";

  std::vector<double> a(n, 1.0);
  std::vector<double> b(n, 2.0);
  std::vector<double> c(n, 0.0);
  minithread::ThreadPool pool(threads);

  SteadyTimeSource clock;
  msgbus::Broker broker(clock);
  progress::Reporter reporter(broker.make_pub(), {"stream", "iterations"});
  progress::Monitor monitor(broker.make_sub(), "stream", clock,
                            to_nanos(0.5));

  const double scalar = 3.0;
  const auto t_end = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(seconds);
  long iterations = 0;
  while (std::chrono::steady_clock::now() < t_end) {
    // The four STREAM operations, work-shared across the pool.
    pool.parallel_for(n, [&](std::size_t i) { c[i] = a[i]; });
    pool.parallel_for(n, [&](std::size_t i) { b[i] = scalar * c[i]; });
    pool.parallel_for(n, [&](std::size_t i) { c[i] = a[i] + b[i]; });
    pool.parallel_for(n, [&](std::size_t i) { a[i] = b[i] + scalar * c[i]; });
    reporter.report(1.0);  // one iteration of the outer loop
    ++iterations;
    monitor.poll();
  }
  monitor.poll();

  // The paper's per-iteration bandwidth: 10 array reads+writes of n
  // doubles per iteration across the four kernels.
  const double gb_per_iter =
      10.0 * static_cast<double>(n) * sizeof(double) / 1e9;
  const auto report = progress::analyze_consistency(monitor.rates(), 0.15, 1);
  std::cout << "iterations:   " << iterations << "\n"
            << "rate:         " << num(report.mean_rate, 2)
            << " iterations/s -> " << num(report.mean_rate * gb_per_iter, 1)
            << " GB/s sustained\n"
            << "consistency:  cv " << num(report.cv * 100.0, 1) << "% -> "
            << (report.consistent ? "consistent (Category 1 behaviour)"
                                  : "fluctuating")
            << "\n"
            << "figure of merit: "
            << num(progress::figure_of_merit(monitor.rates()), 2)
            << " iterations/s\n";
  // Guard against the compiler outsmarting the benchmark.
  if (a[n / 2] < 0.0) {
    std::cout << a[n / 2];
  }
  return 0;
}
