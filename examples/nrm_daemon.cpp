// nrm_daemon — the node resource manager scenarios of paper Section II.
//
// A LAMMPS-class application runs on the simulated node while the NRM
// reacts to directives from the (hypothetical) upper layers of the power
// management hierarchy:
//
//   t =  0 s  uncapped execution
//   t = 20 s  "system load increasing": the job's budget shrinks in steps
//             (140 -> 120 -> 100 W)
//   t = 50 s  "high-priority job started elsewhere": hard immediate cap
//             at 70 W
//   t = 70 s  budget restored; the NRM switches to a progress target of
//             85 % of the uncapped rate, holding it with the least power
//             (model-seeded cap + measured-progress feedback)
//
// Prints a 2 s-resolution timeline of cap, measured power, frequency and
// progress so the cause-effect chain is visible.
#include <iostream>
#include <memory>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "exp/rig.hpp"
#include "policy/nrm.hpp"
#include "progress/monitor.hpp"
#include "util/table.hpp"

int main() {
  using namespace procap;

  exp::SimRig rig;
  const auto model_app = apps::lammps();
  apps::SimApp app(rig.package(), rig.broker(), model_app.spec, 1);
  progress::Monitor monitor(rig.broker().make_sub(), "lammps", rig.time());
  policy::NodeResourceManager nrm(rig.rapl(), monitor, rig.time());
  nrm.attach(rig.engine());

  // Timeline of directives from the job/system levels.
  auto& engine = rig.engine();
  engine.at(to_nanos(20.0), [&](Nanos) { nrm.set_power_budget(140.0); });
  engine.at(to_nanos(30.0), [&](Nanos) { nrm.set_power_budget(120.0); });
  engine.at(to_nanos(40.0), [&](Nanos) { nrm.set_power_budget(100.0); });
  engine.at(to_nanos(50.0), [&](Nanos) { nrm.set_power_budget(70.0); });
  engine.at(to_nanos(70.0), [&](Nanos) {
    model::ModelParams params;
    params.beta = 0.99;
    params.alpha = 2.0;
    params.p_core_max = 0.99 * 150.0;
    params.r_max = 886000.0;  // uncapped atom-steps/s
    nrm.set_progress_target(0.85 * params.r_max, params);
  });

  // Sample the observable state every 2 s.
  TablePrinter table({"t (s)", "cap (W)", "power (W)", "freq (MHz)",
                      "progress (atom-steps/s)", "event"});
  engine.every(to_nanos(2.0), [&](Nanos now) {
    const Seconds t = to_seconds(now);
    std::string event;
    if (t == 20.0) event = "budget 140 W";
    if (t == 30.0) event = "budget 120 W";
    if (t == 40.0) event = "budget 100 W";
    if (t == 50.0) event = "HIGH-PRIORITY JOB: hard cap 70 W";
    if (t == 70.0) event = "progress target 85%";
    table.add_row({num(t, 0),
                   nrm.current_cap() ? num(*nrm.current_cap(), 0)
                                     : std::string("-"),
                   num(rig.package().power(), 1),
                   num(as_mhz(rig.package().frequency()), 0),
                   num(monitor.current_rate(), 0), event});
  });

  engine.run_for(to_nanos(100.0));
  table.print(std::cout);

  std::cout << "\nfinal: cap="
            << (nrm.current_cap() ? num(*nrm.current_cap(), 1) : "none")
            << " W, progress "
            << num(monitor.current_rate() / 886000.0 * 100.0, 1)
            << "% of uncapped (target 85%)\n";
  return 0;
}
